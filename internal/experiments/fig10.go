package experiments

import (
	"context"
	"io"
	"time"

	"shield5g/internal/paka"
)

// Fig10Result holds the stable and initial response times of the P-AKA
// modules from the VNF perspective.
type Fig10Result struct {
	fig9 *Fig9Result
}

// Fig10 measures the stable (R_S) and initial (R_I) response time of each
// module. It shares the measurement machinery of Fig. 9 (the paper
// derives both from the same runs).
func Fig10(ctx context.Context, cfg Config) (*Fig10Result, error) {
	f9, err := Fig9(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return &Fig10Result{fig9: f9}, nil
}

// FromFig9 reuses an existing Fig. 9 run.
func FromFig9(f9 *Fig9Result) *Fig10Result { return &Fig10Result{fig9: f9} }

// StableSGX returns R_S^SGX per module.
func (r *Fig10Result) StableSGX(kind paka.ModuleKind) time.Duration {
	return r.fig9.Response[kind].SGX.Median
}

// StableContainer returns R^C per module.
func (r *Fig10Result) StableContainer(kind paka.ModuleKind) time.Duration {
	return r.fig9.Response[kind].Container.Median
}

// Initial returns R_I^SGX per module.
func (r *Fig10Result) Initial(kind paka.ModuleKind) time.Duration {
	return r.fig9.InitialSGX[kind]
}

// Render prints the paper-style rows for Fig. 10a and 10b.
func (r *Fig10Result) Render(w io.Writer) {
	fprintf(w, "Figure 10a: Stable response latency RS (us)\n")
	fprintf(w, "%-8s %14s %14s %8s\n", "module", "container med", "sgx med", "ratio")
	for _, kind := range paka.Kinds() {
		p := r.fig9.Response[kind]
		fprintf(w, "%-8s %14.1f %14.1f %7.2fx\n", kind, micro(p.Container.Median), micro(p.SGX.Median), p.Ratio())
	}
	fprintf(w, "\nFigure 10b: Initial response latency RI (ms, SGX)\n")
	fprintf(w, "%-8s %12s %12s\n", "module", "RI (ms)", "RI/RS")
	for _, kind := range paka.Kinds() {
		ri := r.fig9.InitialSGX[kind]
		rs := r.fig9.Response[kind].SGX.Median
		ratio := 0.0
		if rs > 0 {
			ratio = float64(ri) / float64(rs)
		}
		fprintf(w, "%-8s %12.3f %11.2fx\n", kind, float64(ri)/float64(time.Millisecond), ratio)
	}
}
