// Package gramine simulates the Gramine LibOS and the Gramine Shielded
// Containers (GSC) toolchain the paper uses to run unmodified container
// images inside SGX enclaves.
//
// Gramine is what turns an ordinary HTTPS microservice into an enclave
// workload: it measures the container's files into the enclave identity,
// boots glibc inside the enclave, and proxies every syscall through
// OCALL/ECALL transitions. Those proxied syscalls — not the AKA
// cryptography — are where the paper finds the overhead, so this package
// models the syscall path per request in detail.
package gramine

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/bits"
	"strings"
)

// Manifest is the Gramine manifest for one shielded service, mirroring the
// options the paper sets (sgx.enclave_size, sgx.max_threads,
// sgx.preheat_enclave, debug/stats).
type Manifest struct {
	// Entrypoint is the in-enclave binary to boot.
	Entrypoint string `json:"entrypoint"`
	// EnclaveSizeBytes is sgx.enclave_size; must be a power of two.
	EnclaveSizeBytes uint64 `json:"enclave_size_bytes"`
	// MaxThreads is sgx.max_threads. Gramine itself consumes
	// HelperThreads of them, so services need at least HelperThreads+1.
	MaxThreads int `json:"max_threads"`
	// PreheatEnclave is sgx.preheat_enclave: pre-fault all heap pages at
	// initialization.
	PreheatEnclave bool `json:"preheat_enclave"`
	// Debug enables the debug build; required for Stats.
	Debug bool `json:"debug"`
	// Stats enables SGX statistics collection (EENTER/EEXIT/AEX counts).
	Stats bool `json:"stats"`
	// Exitless enables switchless OCALLs served by untrusted helper
	// threads (sys.exitless). The paper flags this as insecure for
	// production; it exists for the §V-B7 optimization ablation.
	Exitless bool `json:"exitless,omitempty"`
	// SwitchlessECalls enables the switchless ECALL submission ring: a
	// dedicated in-enclave dispatcher thread pins one TCS and serves
	// shared-memory call submissions, so steady-state requests enter with
	// zero EENTER/EEXIT. Requires one thread beyond the baseline
	// (MaxThreads >= HelperThreads+2) and changes the enclave measurement
	// (see DESIGN.md §15 for the TCB delta).
	SwitchlessECalls bool `json:"switchless_ecalls,omitempty"`
	// TrustedFiles are measured into MRENCLAVE at build time.
	TrustedFiles []TrustedFile `json:"trusted_files,omitempty"`
	// AllowedFiles bypass measurement (config the service may read).
	AllowedFiles []string `json:"allowed_files,omitempty"`
	// Env is the in-enclave environment.
	Env map[string]string `json:"env,omitempty"`
}

// TrustedFile is one measured manifest entry.
type TrustedFile struct {
	URI  string `json:"uri"`
	Size uint64 `json:"size"`
}

// HelperThreads is the number of LibOS helper threads Gramine runs for
// inter-process communication, timers/async events, and pipe TLS
// handshakes. The paper traces its 4-thread minimum to these.
const HelperThreads = 3

// Manifest validation errors.
var (
	// ErrEnclaveSize reports a non-power-of-two or zero enclave size.
	ErrEnclaveSize = errors.New("gramine: enclave size must be a nonzero power of two")
	// ErrTooFewThreads reports max_threads below HelperThreads+1; the
	// paper observes inconsistent behaviour below 4 threads.
	ErrTooFewThreads = fmt.Errorf("gramine: max_threads below %d behaves inconsistently", HelperThreads+1)
	// ErrNoEntrypoint reports a manifest without an entrypoint.
	ErrNoEntrypoint = errors.New("gramine: manifest entrypoint missing")
)

// Validate checks manifest well-formedness.
func (m *Manifest) Validate() error {
	if strings.TrimSpace(m.Entrypoint) == "" {
		return ErrNoEntrypoint
	}
	if m.EnclaveSizeBytes == 0 || bits.OnesCount64(m.EnclaveSizeBytes) != 1 {
		return fmt.Errorf("%w: got %d", ErrEnclaveSize, m.EnclaveSizeBytes)
	}
	if m.MaxThreads < HelperThreads+1 {
		return fmt.Errorf("%w: got %d", ErrTooFewThreads, m.MaxThreads)
	}
	if m.Stats && !m.Debug {
		return errors.New("gramine: stats collection requires the debug build")
	}
	if m.Exitless && m.MaxThreads < HelperThreads+2 {
		return errors.New("gramine: exitless mode needs an extra helper thread (max_threads >= 5)")
	}
	if m.SwitchlessECalls && m.MaxThreads < HelperThreads+2 {
		return errors.New("gramine: switchless ECALLs need a dedicated dispatcher TCS (max_threads >= 5)")
	}
	for _, f := range m.TrustedFiles {
		if f.URI == "" {
			return errors.New("gramine: trusted file with empty URI")
		}
	}
	return nil
}

// Encode renders the manifest as JSON (the GSC toolchain's interchange
// format in this simulation).
func (m *Manifest) Encode() ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("gramine: encode manifest: %w", err)
	}
	return out, nil
}

// ParseManifest decodes and validates a manifest.
func ParseManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("gramine: parse manifest: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// DefaultManifest returns the manifest the paper uses for the P-AKA
// modules: 512 MiB enclave, 4 threads, preheat on, debug+stats for metric
// collection.
func DefaultManifest(entrypoint string) *Manifest {
	return &Manifest{
		Entrypoint:       entrypoint,
		EnclaveSizeBytes: 512 << 20,
		MaxThreads:       4,
		PreheatEnclave:   true,
		Debug:            true,
		Stats:            true,
	}
}
