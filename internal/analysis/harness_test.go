package analysis

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The fixture harness mirrors x/tools' analysistest: each fixture
// package under testdata/src is type-checked and run through one
// analyzer, and the findings are matched line-by-line against
//
//	// want "regexp"             an active finding on this line
//	// want:suppressed "regexp"  an annotation-suppressed finding
//
// Every finding must match a want on its line and every want must be
// matched by a finding — extra findings and stale wants both fail.

var (
	loaderOnce sync.Once
	sharedLdr  *Loader
	repoPkgs   []*Package
	loaderErr  error
)

// fixtureStdlib lists the standard-library imports of the fixture
// packages; warming them into the shared loader lets CheckDir resolve
// fixture imports without a Fallback.
var fixtureStdlib = []string{
	"context", "encoding/json", "fmt", "log",
	"math/rand", "math/rand/v2", "sync", "sync/atomic", "time",
}

// sharedLoader type-checks the whole module plus the fixture imports
// exactly once; fixture tests and the repo-wide tests reuse the result.
func sharedLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := ModuleRoot()
		if err != nil {
			loaderErr = err
			return
		}
		l := NewLoader(root)
		repoPkgs, loaderErr = l.Load(append([]string{"./..."}, fixtureStdlib...)...)
		sharedLdr = l
	})
	if loaderErr != nil {
		t.Fatalf("loading module: %v", loaderErr)
	}
	return sharedLdr
}

func TestDeterminismFixture(t *testing.T)   { runFixture(t, Determinism, "determinism") }
func TestSecretFlowFixture(t *testing.T)    { runFixture(t, SecretFlow, "secretflow") }
func TestSecretFlowEnclaveDir(t *testing.T) { runFixture(t, SecretFlow, "paka") }
func TestAtomicCounterFixture(t *testing.T) { runFixture(t, AtomicCounter, "atomiccounter") }
func TestCtxCarryFixture(t *testing.T)      { runFixture(t, CtxCarry, "ctxcarry") }
func TestCtxCarryMainFixture(t *testing.T)  { runFixture(t, CtxCarry, "ctxcarrymain") }
func TestStripeMapFixture(t *testing.T)     { runFixture(t, StripeMap, "stripemap") }
func TestHotAllocFixture(t *testing.T)      { runFixture(t, HotAlloc, "hotalloc") }
func TestPlaneBoundaryFixture(t *testing.T) { runFixture(t, PlaneBoundary, "planeboundary") }
func TestPoolOwnerFixture(t *testing.T)     { runFixture(t, PoolOwner, "poolowner") }
func TestLockOrderFixture(t *testing.T)     { runFixture(t, LockOrder, "lockorder") }

func runFixture(t *testing.T, a *Analyzer, fixture string) {
	t.Helper()
	l := sharedLoader(t)
	dir, err := filepath.Abs(filepath.Join("testdata", "src", fixture))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.CheckDir("shield5g/internal/analysis/testdata/src/"+fixture, dir)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", fixture, err)
	}
	diags, err := Run([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on fixture %s: %v", a.Name, fixture, err)
	}

	wants := parseWants(t, dir)
	for _, d := range diags {
		if !claimWant(wants, d) {
			kind := "active"
			if d.Suppressed {
				kind = "suppressed"
			}
			t.Errorf("unexpected %s finding: %s", kind, d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: want %q never reported (suppressed=%v)", w.file, w.line, w.re, w.suppressed)
		}
	}
}

type wantComment struct {
	file       string
	line       int
	re         *regexp.Regexp
	suppressed bool
	matched    bool
}

var wantRe = regexp.MustCompile(`// want(:suppressed)? "([^"]+)"`)

func parseWants(t *testing.T, dir string) []*wantComment {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*wantComment
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, m := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
				wants = append(wants, &wantComment{
					file:       path,
					line:       line,
					re:         regexp.MustCompile(m[2]),
					suppressed: m[1] == ":suppressed",
				})
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return wants
}

// claimWant marks the first unmatched want on the diagnostic's line
// whose pattern matches; it reports false when none does.
func claimWant(wants []*wantComment, d Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line || w.suppressed != d.Suppressed {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}
