package amf_test

import (
	"bytes"
	"context"
	"crypto/rand"
	"strings"
	"testing"

	"shield5g/internal/costmodel"
	"shield5g/internal/crypto/milenage"
	"shield5g/internal/crypto/suci"
	"shield5g/internal/nas"
	"shield5g/internal/nf/amf"
	"shield5g/internal/nf/ausf"
	"shield5g/internal/nf/nrf"
	"shield5g/internal/nf/smf"
	"shield5g/internal/nf/udm"
	"shield5g/internal/nf/udr"
	"shield5g/internal/nf/upf"
	"shield5g/internal/paka"
	"shield5g/internal/sbi"
	"shield5g/internal/ue"
)

var testK = bytes.Repeat([]byte{0x46}, 16)

type harness struct {
	amf   *amf.AMF
	hnKey *suci.HomeNetworkKey
	env   *costmodel.Env
	supi  suci.SUPI
	opc   []byte
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	ctx := context.Background()
	env := costmodel.NewEnv(nil, 5, nil)
	reg := sbi.NewRegistry()
	if _, err := nrf.New(env, reg); err != nil {
		t.Fatalf("nrf.New: %v", err)
	}
	if _, err := udr.New(env, reg); err != nil {
		t.Fatalf("udr.New: %v", err)
	}
	hnKey, err := suci.GenerateHomeNetworkKey(rand.Reader, 1)
	if err != nil {
		t.Fatalf("GenerateHomeNetworkKey: %v", err)
	}
	monoUDM := paka.NewMonolithicUDM(env)
	if _, err := udm.New(ctx, udm.Config{
		Env: env, Registry: reg, Invoker: sbi.NewClient("udm", env, reg),
		Functions: monoUDM, HomeNetworkKey: hnKey,
	}); err != nil {
		t.Fatalf("udm.New: %v", err)
	}
	if _, err := ausf.New(ctx, ausf.Config{
		Env: env, Registry: reg, Invoker: sbi.NewClient("ausf", env, reg),
		Functions: paka.NewMonolithicAUSF(env),
	}); err != nil {
		t.Fatalf("ausf.New: %v", err)
	}
	if _, err := upf.New(env, reg); err != nil {
		t.Fatalf("upf.New: %v", err)
	}
	if _, err := smf.New(ctx, smf.Config{Env: env, Registry: reg, Invoker: sbi.NewClient("smf", env, reg)}); err != nil {
		t.Fatalf("smf.New: %v", err)
	}
	a, err := amf.New(ctx, amf.Config{
		Env: env, Registry: reg, Invoker: sbi.NewClient("amf", env, reg),
		Functions: paka.NewMonolithicAMF(env),
		MCC:       "001", MNC: "01",
	})
	if err != nil {
		t.Fatalf("amf.New: %v", err)
	}

	supi := suci.SUPI{MCC: "001", MNC: "01", MSIN: "0000000001"}
	opc, err := milenage.ComputeOPc(testK, make([]byte, 16))
	if err != nil {
		t.Fatalf("ComputeOPc: %v", err)
	}
	if err := udr.NewClient(sbi.NewClient("prov", env, reg)).Provision(ctx, udr.Subscriber{
		SUPI: supi.String(), K: testK, OPc: opc,
		SQN: make([]byte, 6), AMFField: []byte{0x80, 0x00},
	}); err != nil {
		t.Fatalf("provision: %v", err)
	}
	monoUDM.ProvisionSubscriber(supi.String(), testK)
	return &harness{amf: a, hnKey: hnKey, env: env, supi: supi, opc: opc}
}

func (h *harness) device(t *testing.T) *ue.UE {
	t.Helper()
	d, err := ue.New(ue.Config{
		SUPI: h.supi, K: testK, OPc: h.opc,
		HomeNetworkPublicKey: h.hnKey.PublicKey(),
		HomeNetworkKeyID:     h.hnKey.ID,
		Env:                  h.env,
	})
	if err != nil {
		t.Fatalf("ue.New: %v", err)
	}
	return d
}

// register drives the NAS exchange directly against the AMF.
func (h *harness) register(t *testing.T, device *ue.UE, ranUEID uint64) {
	t.Helper()
	ctx := context.Background()
	up, err := device.BuildRegistrationRequest(ctx, h.amf.ServingNetworkName())
	if err != nil {
		t.Fatalf("BuildRegistrationRequest: %v", err)
	}
	down, err := h.amf.HandleInitialUE(ctx, ranUEID, up)
	if err != nil {
		t.Fatalf("HandleInitialUE: %v", err)
	}
	for i := 0; i < 8; i++ {
		uplink, done, err := device.HandleDownlinkNAS(ctx, down)
		if err != nil {
			t.Fatalf("UE NAS: %v", err)
		}
		if uplink == nil {
			return
		}
		down, err = h.amf.HandleUplinkNAS(ctx, ranUEID, uplink)
		if err != nil {
			t.Fatalf("HandleUplinkNAS: %v", err)
		}
		if down == nil || done {
			return
		}
	}
	t.Fatal("registration did not converge")
}

func TestAMFConfigValidation(t *testing.T) {
	env := costmodel.NewEnv(nil, 1, nil)
	reg := sbi.NewRegistry()
	inv := sbi.NewClient("amf", env, reg)
	if _, err := amf.New(context.Background(), amf.Config{Registry: reg, Invoker: inv}); err == nil {
		t.Fatal("missing env accepted")
	}
	if _, err := amf.New(context.Background(), amf.Config{Env: env, Registry: reg, Invoker: inv, MCC: "001", MNC: "01"}); err == nil {
		t.Fatal("missing functions accepted")
	}
	if _, err := amf.New(context.Background(), amf.Config{Env: env, Registry: reg, Invoker: inv, Functions: paka.NewMonolithicAMF(env)}); err == nil {
		t.Fatal("missing PLMN accepted")
	}
}

func TestServingNetworkName(t *testing.T) {
	h := newHarness(t)
	if got := h.amf.ServingNetworkName(); got != "5G:mnc001.mcc001.3gppnetwork.org" {
		t.Fatalf("SNN = %q", got)
	}
}

func TestFullRegistrationStateMachine(t *testing.T) {
	h := newHarness(t)
	h.register(t, h.device(t), 1)
	if h.amf.RegisteredUEs() != 1 {
		t.Fatalf("RegisteredUEs = %d", h.amf.RegisteredUEs())
	}
	supi, ok := h.amf.SUPIOf(1)
	if !ok || supi != h.supi.String() {
		t.Fatalf("SUPIOf = %q %v", supi, ok)
	}
}

func TestInitialUERejectsGarbage(t *testing.T) {
	h := newHarness(t)
	ctx := context.Background()
	if _, err := h.amf.HandleInitialUE(ctx, 1, []byte{0x00, 0x01}); err == nil {
		t.Fatal("garbage NAS accepted")
	}
	// A non-registration first message is refused.
	pdu, err := nas.Encode(&nas.AuthenticationResponse{})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if _, err := h.amf.HandleInitialUE(ctx, 1, pdu); err == nil {
		t.Fatal("non-registration initial message accepted")
	}
}

func TestInitialUERejectsWrongPLMN(t *testing.T) {
	h := newHarness(t)
	wrong := &suci.SUCI{MCC: "310", MNC: "410", RoutingIndicator: "0000",
		Scheme: suci.SchemeProfileA, HomeKeyID: 1, SchemeOutput: make([]byte, 50)}
	pdu, err := nas.Encode(&nas.RegistrationRequest{
		RegistrationType: nas.RegistrationInitial,
		Identity:         nas.MobileIdentity{SUCI: wrong},
	})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	_, err = h.amf.HandleInitialUE(context.Background(), 1, pdu)
	if err == nil || !strings.Contains(err.Error(), "PLMN") {
		t.Fatalf("wrong-PLMN err = %v", err)
	}
}

func TestUplinkUnknownUE(t *testing.T) {
	h := newHarness(t)
	pdu, err := nas.Encode(&nas.AuthenticationResponse{})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if _, err := h.amf.HandleUplinkNAS(context.Background(), 42, pdu); err == nil {
		t.Fatal("unknown RAN UE accepted")
	}
}

func TestWrongResStarGetsReject(t *testing.T) {
	h := newHarness(t)
	ctx := context.Background()
	device := h.device(t)
	up, err := device.BuildRegistrationRequest(ctx, h.amf.ServingNetworkName())
	if err != nil {
		t.Fatalf("BuildRegistrationRequest: %v", err)
	}
	if _, err := h.amf.HandleInitialUE(ctx, 1, up); err != nil {
		t.Fatalf("HandleInitialUE: %v", err)
	}
	// Impostor response with a garbage RES*.
	bad, err := nas.Encode(&nas.AuthenticationResponse{ResStar: [16]byte{1, 2, 3}})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	down, err := h.amf.HandleUplinkNAS(ctx, 1, bad)
	if err != nil {
		t.Fatalf("HandleUplinkNAS: %v", err)
	}
	msg, err := nas.Decode(down)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if _, ok := msg.(*nas.AuthenticationReject); !ok {
		t.Fatalf("downlink = %s, want AuthenticationReject", msg.Type())
	}
	if h.amf.RegisteredUEs() != 0 {
		t.Fatal("impostor registered")
	}
}

func TestPDUSessionLifecycle(t *testing.T) {
	h := newHarness(t)
	ctx := context.Background()
	device := h.device(t)
	h.register(t, device, 1)

	up, err := device.BuildPDUSessionRequest(ctx, 1, "internet")
	if err != nil {
		t.Fatalf("BuildPDUSessionRequest: %v", err)
	}
	down, err := h.amf.HandleUplinkNAS(ctx, 1, up)
	if err != nil {
		t.Fatalf("PDU session uplink: %v", err)
	}
	if _, _, err := device.HandleDownlinkNAS(ctx, down); err != nil {
		t.Fatalf("PDU accept: %v", err)
	}
	if device.UEAddress() == "" {
		t.Fatal("no UE address")
	}
	teid, ok := h.amf.PDUSessionTEID(1)
	if !ok || teid == 0 {
		t.Fatalf("TEID = %d %v", teid, ok)
	}
	if _, ok := h.amf.PDUSessionTEID(99); ok {
		t.Fatal("TEID for unknown UE")
	}
}

func TestMultipleUEsIndependentContexts(t *testing.T) {
	h := newHarness(t)
	for i := uint64(1); i <= 3; i++ {
		h.register(t, h.device(t), i)
	}
	if h.amf.RegisteredUEs() != 3 {
		t.Fatalf("RegisteredUEs = %d, want 3", h.amf.RegisteredUEs())
	}
}
