package sbi

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

type codecFixture struct {
	SUPI string        `json:"supi"`
	RAND []byte        `json:"rand,omitempty"`
	N    int           `json:"n"`
	D    time.Duration `json:"d,omitempty"`
	Nest *codecFixture `json:"nest,omitempty"`
}

// TestMarshalBodyMatchesJSONMarshal pins the pooled encoder byte-for-byte
// to json.Marshal — the SBI cost model charges by body length, so even a
// trailing newline would skew every modelled latency.
func TestMarshalBodyMatchesJSONMarshal(t *testing.T) {
	cases := []any{
		&codecFixture{SUPI: "imsi-001010000000001", RAND: bytes.Repeat([]byte{0xAB}, 16), N: 7},
		&codecFixture{SUPI: "<&>", D: 5 * time.Second, Nest: &codecFixture{N: -1}},
		&ProblemDetails{Title: "Forbidden", Status: 403, Cause: "X", RetryAfter: time.Millisecond},
		map[string]any{"a": 1.5, "b": []string{"x", "y"}},
		nil,
		42,
		"plain \"string\" with <html>",
	}
	for i, v := range cases {
		for round := 0; round < 3; round++ { // exercise pool reuse
			got, gerr := MarshalBody(v)
			want, werr := json.Marshal(v)
			if (gerr == nil) != (werr == nil) {
				t.Fatalf("case %d: err mismatch: %v vs %v", i, gerr, werr)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("case %d round %d:\n got %q\nwant %q", i, round, got, want)
			}
			ReleaseBody(got)
		}
	}
}

func TestMarshalBodyError(t *testing.T) {
	if _, err := MarshalBody(func() {}); err == nil {
		t.Fatal("marshal of a func: want error")
	}
	// The pool must still work after the error path.
	out, err := MarshalBody(1)
	if err != nil || string(out) != "1" {
		t.Fatalf("after error: %q, %v", out, err)
	}
	ReleaseBody(out)
}

func TestUnmarshalBodyMatchesJSONUnmarshal(t *testing.T) {
	body, _ := json.Marshal(&codecFixture{SUPI: "imsi-9", RAND: []byte{1, 2, 3}, N: 3,
		Nest: &codecFixture{SUPI: "inner"}})
	for round := 0; round < 3; round++ {
		var a, b codecFixture
		if err := UnmarshalBody(body, &a); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := json.Unmarshal(body, &b); err != nil {
			t.Fatal(err)
		}
		if a.SUPI != b.SUPI || !bytes.Equal(a.RAND, b.RAND) || a.N != b.N ||
			(a.Nest == nil) != (b.Nest == nil) || a.Nest.SUPI != b.Nest.SUPI {
			t.Fatalf("round %d: decoded %+v, want %+v", round, a, b)
		}
	}
}

// TestUnmarshalBodyDecodedSlicesDoNotAlias: decoded []byte fields must
// survive the body's release back into the pool.
func TestUnmarshalBodyDecodedSlicesDoNotAlias(t *testing.T) {
	body, _ := MarshalBody(&codecFixture{RAND: bytes.Repeat([]byte{0x5A}, 16)})
	var v codecFixture
	if err := UnmarshalBody(body, &v); err != nil {
		t.Fatal(err)
	}
	ReleaseBody(body)
	// Recycle the buffer through another marshal, overwriting its bytes.
	other, _ := MarshalBody(map[string]string{"x": "yyyyyyyyyyyyyyyyyyyyyyyyyyyyyy"})
	if !bytes.Equal(v.RAND, bytes.Repeat([]byte{0x5A}, 16)) {
		t.Fatal("decoded field aliased the released body")
	}
	ReleaseBody(other)
}

func TestUnmarshalBodyErrors(t *testing.T) {
	var v codecFixture
	if err := UnmarshalBody(nil, &v); err == nil {
		t.Fatal("empty body: want error")
	}
	if err := UnmarshalBody([]byte("{bad"), &v); err == nil {
		t.Fatal("malformed body: want error")
	}
	// Pool still sane after the discard path.
	if err := UnmarshalBody([]byte(`{"n":9}`), &v); err != nil || v.N != 9 {
		t.Fatalf("after error: %+v, %v", v, err)
	}
}

// TestUnmarshalBodyTrailingData pins UnmarshalBody to json.Unmarshal's
// trailing-data semantics — and, critically, proves a body with trailing
// bytes cannot poison the pooled decoder: Decoder.Decode reads one value
// and buffers the rest, so re-pooling that state would hand the leftover
// bytes to the NEXT caller's decode (cross-request corruption).
func TestUnmarshalBodyTrailingData(t *testing.T) {
	cases := []string{
		`{"n":1}{"n":99}`,  // second value
		`{"n":1}garbage`,   // syntactic garbage
		`{"n":1}]`,         // stray close bracket
		`{"n":1} `,         // trailing whitespace (accepted)
		"{\"n\":1}\n\t\r ", // more whitespace flavors (accepted)
		`7 8`,              // bare values
		` {"n":1}`,         // leading whitespace only (accepted)
	}
	for _, body := range cases {
		var got, want codecFixture
		gerr := UnmarshalBody([]byte(body), &got)
		werr := json.Unmarshal([]byte(body), &want)
		if (gerr == nil) != (werr == nil) {
			t.Errorf("%q: err = %v, json.Unmarshal err = %v", body, gerr, werr)
		}
		if gerr == nil && got.N != want.N {
			t.Errorf("%q: decoded %+v, want %+v", body, got, want)
		}
		// Whatever the outcome, the pool must decode the next clean body
		// correctly — a poisoned re-pooled decoder would replay the tail
		// of the previous body here. Drain several pool slots to make a
		// poisoned codec hard to miss.
		for i := 0; i < 4; i++ {
			var next codecFixture
			if err := UnmarshalBody([]byte(`{"n":42}`), &next); err != nil || next.N != 42 {
				t.Fatalf("after %q: pooled decode corrupted: %+v, %v", body, next, err)
			}
		}
	}
}

func TestReleaseBodyNilSafe(t *testing.T) {
	ReleaseBody(nil)
	ReleaseBody([]byte{})
}

// TestReleaseBodyCapsPooledSize: a large response buffer (up to the 1 MiB
// transport limit) must fall to the GC, not get pinned in the pool that
// serves ~300-byte encodes.
func TestReleaseBodyCapsPooledSize(t *testing.T) {
	ReleaseBody(make([]byte, 0, maxPooledBodyCap*4))
	for i := 0; i < 8; i++ {
		if b := getBuf(); cap(b) > maxPooledBodyCap {
			t.Fatalf("oversized buffer (cap %d) entered the pool", cap(b))
		}
	}
}

// TestCodecConcurrent hammers the pools from many goroutines; run with
// -race this proves codec states are never shared.
func TestCodecConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	fail := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			in := &codecFixture{SUPI: "imsi-00101", N: g}
			for i := 0; i < 300; i++ {
				body, err := MarshalBody(in)
				if err != nil {
					fail <- err.Error()
					return
				}
				var out codecFixture
				if err := UnmarshalBody(body, &out); err != nil || out.N != g {
					fail <- "decode mismatch under concurrency"
					return
				}
				ReleaseBody(body)
			}
		}(g)
	}
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
}
