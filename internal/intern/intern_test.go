package intern

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestBytesCanonicalises(t *testing.T) {
	if got := Bytes(nil); got != "" {
		t.Errorf("Bytes(nil) = %q", got)
	}
	if got := Bytes([]byte{}); got != "" {
		t.Errorf("Bytes(empty) = %q", got)
	}
	a := Bytes([]byte("intern-test-001"))
	b := Bytes([]byte("intern-test-001"))
	if a != b {
		t.Fatalf("Bytes returned different values: %q vs %q", a, b)
	}
}

func TestBytesHitIsAllocationFree(t *testing.T) {
	val := []byte("intern-test-5G:mnc001.mcc001.3gppnetwork.org")
	Bytes(val) // seed the table
	allocs := testing.AllocsPerRun(100, func() {
		if got := Bytes(val); got != string(val) {
			t.Fatalf("Bytes = %q", got)
		}
	})
	if allocs != 0 {
		t.Errorf("interned hit allocates %.1f per run, want 0", allocs)
	}
}

func TestBytesOverlongBypassesTable(t *testing.T) {
	long := []byte(strings.Repeat("x", maxLen+1))
	got := Bytes(long)
	if got != string(long) {
		t.Fatalf("Bytes(long) = %q", got)
	}
	table.RLock()
	_, cached := table.m[string(long)]
	table.RUnlock()
	if cached {
		t.Errorf("over-length value was admitted to the table")
	}
}

func TestBytesCapBoundsTable(t *testing.T) {
	// Hammer the table with high-cardinality values: it must never grow
	// past maxEntries, and lookups must stay correct afterwards.
	for i := 0; i < maxEntries+100; i++ {
		v := fmt.Sprintf("intern-test-churn-%04d", i)
		if got := Bytes([]byte(v)); got != v {
			t.Fatalf("Bytes(%q) = %q", v, got)
		}
	}
	table.RLock()
	n := len(table.m)
	table.RUnlock()
	if n > maxEntries {
		t.Fatalf("table grew to %d entries, cap is %d", n, maxEntries)
	}
}

func TestBytesConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				v := fmt.Sprintf("intern-test-conc-%d", i%16)
				if got := Bytes([]byte(v)); got != v {
					t.Errorf("Bytes(%q) = %q", v, got)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
