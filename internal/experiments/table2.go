package experiments

import (
	"context"
	"io"

	"shield5g/internal/paka"
)

// Table2Row is one module's overhead summary.
type Table2Row struct {
	Module paka.ModuleKind
	// LFRatio is the functional-latency overhead (paper: 1.2-1.5x).
	LFRatio float64
	// LTRatio is the total-latency overhead (paper: 1.86-2.43x).
	LTRatio float64
	// ResponseRatio is R_S^SGX / R^C (paper: 2.2-2.9x).
	ResponseRatio float64
	// InitialRatio is R_I^SGX / R_S^SGX (paper: ~18.4-21.4x).
	InitialRatio float64
}

// Table2Result is the overhead table.
type Table2Result struct {
	Rows []Table2Row
}

// Table2 derives the SGX overhead summary from the Fig. 9/10 measurement
// runs.
func Table2(ctx context.Context, cfg Config) (*Table2Result, error) {
	f9, err := Fig9(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return Table2From(f9), nil
}

// Table2From derives the table from an existing Fig. 9 run.
func Table2From(f9 *Fig9Result) *Table2Result {
	result := &Table2Result{}
	for _, kind := range paka.Kinds() {
		resp := f9.Response[kind]
		initial := 0.0
		if rs := resp.SGX.Median; rs > 0 {
			initial = float64(f9.InitialSGX[kind]) / float64(rs)
		}
		result.Rows = append(result.Rows, Table2Row{
			Module:        kind,
			LFRatio:       f9.Functional[kind].Ratio(),
			LTRatio:       f9.Total[kind].Ratio(),
			ResponseRatio: resp.Ratio(),
			InitialRatio:  initial,
		})
	}
	return result
}

// Render prints the paper-style Table II.
func (r *Table2Result) Render(w io.Writer) {
	fprintf(w, "Table II: SGX overhead across the isolated modules\n")
	fprintf(w, "%-8s %8s %8s %14s %14s\n", "module", "LF", "LT", "RSGX/RC", "RI/RS")
	for _, row := range r.Rows {
		fprintf(w, "%-8s %7.2fx %7.2fx %13.2fx %13.2fx\n",
			row.Module, row.LFRatio, row.LTRatio, row.ResponseRatio, row.InitialRatio)
	}
	fprintf(w, "(paper: LF 1.2-1.5x, LT 1.86-2.43x, R 2.2-2.9x, RI/RS 18.4-21.4x)\n")
}
