package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"shield5g/internal/deploy"
	"shield5g/internal/gnb"
	"shield5g/internal/paka"
	"shield5g/internal/ue"
)

// The shardscale experiment sweeps the horizontally sharded core across
// replica counts {1, 2, 4, 8} on the full fast path (keep-alive batch-8,
// AV pool depth 8, binary SBI, prewarmed): each point deploys a fresh
// same-seed slice, pre-provisions and prewarms the whole UE population,
// then drives one deterministic sequential mass registration and reports
// the fleet's virtual throughput (registrations over the busiest lane's
// makespan) next to the shared-clock figure. The replicas=1 point takes
// the singleton construction path, so it is bit-identical to the seed's
// golden transcripts; the fleet speedup at 8 replicas is the tentpole
// acceptance figure (>= 3x). Set BENCH_SHARD_JSON to a path to dump the
// sweep (the BENCH_shard_scaling.json artifact).

// shardScaleReplicas is the swept replica axis.
var shardScaleReplicas = []int{1, 2, 4, 8}

// ShardScalePoint is one replica count of the sweep.
type ShardScalePoint struct {
	Replicas   int `json:"replicas"`
	Registered int `json:"registered"`
	Failed     int `json:"failed"`
	// Virtual is the shared-clock advance over the run; FleetVirtual is
	// the busiest replica lane's busy time (the fleet makespan).
	Virtual       time.Duration `json:"-"`
	VirtualMS     float64       `json:"virtual_ms"`
	FleetVirtual  time.Duration `json:"-"`
	FleetMS       float64       `json:"fleet_makespan_ms"`
	VirtualRegsPS float64       `json:"virtual_regs_per_sec"`
	FleetRegsPS   float64       `json:"fleet_regs_per_sec"`
	// Speedup is this point's fleet throughput over the replicas=1
	// point's.
	Speedup float64 `json:"speedup"`
	// AllocsPerReg is the steady-state heap cost per registration —
	// the section-9 budget (< 100 on this path) must hold at every
	// replica count, or sharding bought throughput by spending the
	// allocation-discipline work.
	AllocsPerReg float64 `json:"allocs_per_reg"`
	BytesPerReg  float64 `json:"bytes_per_reg"`
	// TransPerReg is the fleet-wide EENTER+EEXIT census per registration
	// over the measured window — the figure the switchless ring collapses;
	// it must stay flat across replica counts (sharding multiplies lanes,
	// not per-registration boundary crossings).
	TransPerReg float64 `json:"transitions_per_reg"`
	// LaneRegistered is the per-shard registration spread (affinity
	// balance), in shard-index order.
	LaneRegistered []int `json:"lane_registered"`
	// Mode keys the point for benchdiff ("replicas-N").
	Mode string `json:"mode"`
}

// ShardScaleResult is the full sweep.
type ShardScaleResult struct {
	UEs    int               `json:"ues"`
	Points []ShardScalePoint `json:"points"`
	// SpeedupAt8 is the fleet-throughput gain of 8 replicas over 1
	// (acceptance: >= 3).
	SpeedupAt8 float64 `json:"speedup_at_8"`
	// Deterministic reports whether a same-seed replay of the
	// replicas=8 point reproduced identical virtual-time results lane
	// by lane (allocation counters are excluded: the Go heap is not
	// part of the simulation's determinism contract).
	Deterministic bool `json:"deterministic"`
}

// ShardScale runs the replica sweep.
func ShardScale(ctx context.Context, cfg Config) (*ShardScaleResult, error) {
	n := cfg.iterations()
	if n < 160 {
		n = 160
	}
	if n > 320 {
		n = 320
	}
	result := &ShardScaleResult{UEs: n}
	for _, replicas := range shardScaleReplicas {
		point, err := shardScalePoint(ctx, cfg, n, replicas)
		if err != nil {
			return nil, err
		}
		result.Points = append(result.Points, point)
	}
	base := result.Points[0].FleetRegsPS
	for i := range result.Points {
		if base > 0 {
			result.Points[i].Speedup = result.Points[i].FleetRegsPS / base
		}
	}
	result.SpeedupAt8 = result.Points[len(result.Points)-1].Speedup

	// Same-seed replay of the widest point: every virtual-time figure
	// must reproduce exactly.
	replay, err := shardScalePoint(ctx, cfg, n, 8)
	if err != nil {
		return nil, err
	}
	last := result.Points[len(result.Points)-1]
	result.Deterministic = last.Registered == replay.Registered &&
		last.Failed == replay.Failed &&
		last.Virtual == replay.Virtual &&
		last.FleetVirtual == replay.FleetVirtual &&
		sameLanes(last.LaneRegistered, replay.LaneRegistered)

	if path := os.Getenv("BENCH_SHARD_JSON"); path != "" {
		data, err := json.MarshalIndent(result, "", "  ")
		if err != nil {
			return nil, fmt.Errorf("shardscale: marshal report: %w", err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return nil, fmt.Errorf("shardscale: write %s: %w", path, err)
		}
	}
	return result, nil
}

// fleetTransitions sums the enclave transitions (EENTER+EEXIT) across
// every P-AKA module of every shard; singleton slices fall back to the
// slice-level module map.
func fleetTransitions(s *deploy.Slice) uint64 {
	if len(s.Shards) == 0 {
		return sliceTransitions(s)
	}
	var n uint64
	for _, shard := range s.Shards {
		for _, m := range shard.Modules {
			st := m.Stats()
			n += st.EENTER + st.EEXIT
		}
	}
	return n
}

func sameLanes(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// shardScalePoint deploys a fresh slice with the given replica count,
// provisions and prewarms the population outside the measured window,
// then drives the deterministic sequential registration run.
func shardScalePoint(ctx context.Context, cfg Config, n, replicas int) (ShardScalePoint, error) {
	point := ShardScalePoint{Replicas: replicas, Mode: fmt.Sprintf("replicas-%d", replicas)}
	s, err := deploy.NewSlice(ctx, deploy.SliceConfig{
		Isolation:   paka.SGX,
		Seed:        cfg.Seed + 53,
		Replicas:    replicas,
		AVPoolDepth: 8,
		BinarySBI:   true,
	})
	if err != nil {
		return point, err
	}
	defer s.Stop()

	// Warm every shard's chain (TLS handshakes, enclave warm-up, binary
	// SBI capability negotiation) so the window measures steady state.
	// One registration per shard: capability snapshots and keep-alive
	// state are per service pair, and each shard is its own chain. The
	// warm UE for each shard is found by ring ownership — a fixed MSIN
	// per shard index would leave the shards it happens not to hash to
	// cold, charging their first-contact costs to the window. The
	// warm-up also rides the same keep-alive connection identity the
	// mass driver uses, so every module's per-connection session state
	// exists before the window opens instead of being charged to it.
	warmCtx := paka.WithConnection(ctx, 1, 8)
	shardWarm := make([]bool, len(s.Shards))
	for probe, warmed := 0, 0; warmed < len(s.Shards); probe++ {
		if probe > 10000 {
			return point, fmt.Errorf("shardscale: no warm SUPI found for %d of %d shards", len(s.Shards)-warmed, len(s.Shards))
		}
		warm, err := sliceSubscriber(ctx, s, fmt.Sprintf("%010d", 9000+probe))
		if err != nil {
			return point, err
		}
		if shard := s.GNB.ShardOf(warm.SUPIString()); !shardWarm[shard] {
			if _, err := s.GNB.RegisterUE(warmCtx, warm); err != nil {
				return point, err
			}
			shardWarm[shard] = true
			warmed++
		}
	}

	// Provision and prewarm the population outside the window — the
	// operator's deployment order, same as the binsbi bench mode.
	devices := make([]*ue.UE, n)
	supis := make([]string, n)
	for i := range devices {
		device, err := sliceSubscriber(ctx, s, fmt.Sprintf("%010d", 8000+i))
		if err != nil {
			return point, err
		}
		devices[i] = device
		supis[i] = device.SUPIString()
	}
	if err := s.PrewarmAVPool(ctx, supis); err != nil {
		return point, err
	}

	transBefore := fleetTransitions(s)
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	res, err := s.GNB.RegisterManyWith(ctx, gnb.MassOptions{
		N:         n,
		NewUE:     func(i int) (*ue.UE, error) { return devices[i], nil },
		BatchSize: 8,
	})
	runtime.ReadMemStats(&after)
	if err != nil {
		return point, err
	}

	point.Registered = res.Registered
	point.Failed = res.Failed
	point.Virtual = res.Virtual
	point.VirtualMS = float64(res.Virtual) / float64(time.Millisecond)
	point.FleetVirtual = res.FleetVirtual
	point.FleetMS = float64(res.FleetVirtual) / float64(time.Millisecond)
	point.VirtualRegsPS = res.VirtualRegsPerSec
	point.FleetRegsPS = res.FleetVirtualRegsPerSec
	if res.Registered > 0 {
		point.AllocsPerReg = float64(after.Mallocs-before.Mallocs) / float64(res.Registered)
		point.BytesPerReg = float64(after.TotalAlloc-before.TotalAlloc) / float64(res.Registered)
		point.TransPerReg = float64(fleetTransitions(s)-transBefore) / float64(res.Registered)
	}
	point.LaneRegistered = make([]int, len(res.ShardStats))
	for i, st := range res.ShardStats {
		point.LaneRegistered[i] = st.Registered
	}
	if len(res.ShardStats) == 0 {
		// Singleton runs carry one implicit lane.
		point.LaneRegistered = []int{res.Registered}
	}
	return point, nil
}

// Render prints the sweep table.
func (r *ShardScaleResult) Render(w io.Writer) {
	fprintf(w, "Horizontally sharded core: replica sweep (%d UEs, batch-8 + AV pool 8 + binary SBI, prewarmed)\n", r.UEs)
	fprintf(w, "%-9s %6s %6s %12s %12s %12s %12s %8s %9s %8s\n",
		"replicas", "ok", "fail", "virtual", "makespan", "virt reg/s", "fleet reg/s", "speedup", "allocs/r", "trans/r")
	for _, p := range r.Points {
		fprintf(w, "%-9d %6d %6d %12s %12s %12.1f %12.1f %7.2fx %9.1f %8.1f\n",
			p.Replicas, p.Registered, p.Failed,
			p.Virtual.Round(time.Millisecond), p.FleetVirtual.Round(time.Millisecond),
			p.VirtualRegsPS, p.FleetRegsPS, p.Speedup, p.AllocsPerReg, p.TransPerReg)
	}
	fprintf(w, "fleet speedup at 8 replicas: %.2fx (acceptance: >= 3x)\n", r.SpeedupAt8)
	if r.Deterministic {
		fprintf(w, "(same-seed replay of the replicas-8 point reproduced identical lane-by-lane virtual time)\n")
	} else {
		fprintf(w, "WARNING: same-seed replay diverged; the determinism contract is broken\n")
	}
}

// WriteCSV emits the sweep series.
func (r *ShardScaleResult) WriteCSV(w io.Writer) error {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Replicas),
			fmt.Sprintf("%d", p.Registered),
			fmt.Sprintf("%d", p.Failed),
			f(p.VirtualMS),
			f(p.FleetMS),
			f(p.VirtualRegsPS),
			f(p.FleetRegsPS),
			f(p.Speedup),
			f(p.AllocsPerReg),
			f(p.BytesPerReg),
			f(p.TransPerReg),
		})
	}
	return writeCSV(w, []string{
		"replicas", "registered", "failed", "virtual_ms", "fleet_makespan_ms",
		"virtual_regs_per_sec", "fleet_regs_per_sec", "speedup", "allocs_per_reg", "bytes_per_reg",
		"transitions_per_reg",
	}, rows)
}
