// Command shieldlint runs the repository's static-analysis suite (see
// internal/analysis): determinism, secretflow, atomiccounter, ctxcarry,
// stripemap and hotalloc. It exits non-zero when any unsuppressed finding
// remains, which makes it a CI gate:
//
//	go run ./tools/shieldlint ./...          # the `make lint` entry point
//	go run ./tools/shieldlint -v ./internal/gnb
//	go run ./tools/shieldlint -show-suppressed ./...
package main

import (
	"flag"
	"fmt"
	"os"

	"shield5g/internal/analysis"
)

func main() {
	verbose := flag.Bool("v", false, "print per-analyzer summary")
	showSuppressed := flag.Bool("show-suppressed", false, "also print annotation-suppressed findings")
	only := flag.String("only", "", "run a single analyzer by name")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: shieldlint [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	analyzers := analysis.Analyzers()
	if *only != "" {
		a := analysis.ByName(*only)
		if a == nil {
			fmt.Fprintf(os.Stderr, "shieldlint: unknown analyzer %q\n", *only)
			os.Exit(2)
		}
		analyzers = []*analysis.Analyzer{a}
	}

	root, err := analysis.ModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "shieldlint:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.NewLoader(root).Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shieldlint:", err)
		os.Exit(2)
	}

	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shieldlint:", err)
		os.Exit(2)
	}

	perAnalyzer := make(map[string]int)
	active := 0
	for _, d := range diags {
		if d.Suppressed {
			if *showSuppressed {
				fmt.Printf("%s [suppressed by annotation]\n", d)
			}
			continue
		}
		active++
		perAnalyzer[d.Analyzer]++
		fmt.Println(d)
	}

	if *verbose {
		fmt.Fprintf(os.Stderr, "shieldlint: %d package(s) analyzed\n", len(pkgs))
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-14s %d finding(s)\n", a.Name, perAnalyzer[a.Name])
		}
	}
	if active > 0 {
		fmt.Fprintf(os.Stderr, "shieldlint: %d finding(s)\n", active)
		os.Exit(1)
	}
}
