// Package udr implements the Unified Data Repository: the credential
// storage unit for subscribers. The UDM fetches authentication subscription
// data (K, OPc, SQN, AMF field) from here when generating authentication
// vectors, and writes SQN updates back (increment per vector,
// resynchronisation after AUTS).
package udr

import (
	"context"
	"encoding/binary"
	"fmt"

	"shield5g/internal/costmodel"
	"shield5g/internal/sbi"
	"shield5g/internal/shard"
)

// ServiceName is the UDR's SBI service name.
const ServiceName = "udr"

// SBI endpoint paths.
const (
	PathProvision     = "/nudr-dr/v1/subscription-data/provision"
	PathNextAuth      = "/nudr-dr/v1/subscription-data/next-auth"
	PathNextAuthBatch = "/nudr-dr/v1/subscription-data/next-auth-batch"
	PathResync        = "/nudr-dr/v1/subscription-data/resync"
	PathGet           = "/nudr-dr/v1/subscription-data/get"
)

// sqnStep is the sequence-number increment per generated vector
// (TS 33.102 Annex C array scheme: 32 = one IND slot).
const sqnStep = 32

// Subscriber is one provisioned subscription record.
type Subscriber struct {
	SUPI string `json:"supi"`
	// K is the 16-byte long-term subscriber key.
	K []byte `json:"k"`
	// OPc is the derived operator key.
	OPc []byte `json:"opc"`
	// SQN is the 6-byte network-side sequence number.
	SQN []byte `json:"sqn"`
	// AMFField is the 2-byte authentication management field (the
	// "separation bit" must be set for 5G AKA, giving 0x8000).
	AMFField []byte `json:"amf_field"`
}

func (s *Subscriber) validate() error {
	if s.SUPI == "" {
		return fmt.Errorf("udr: empty SUPI")
	}
	if len(s.K) != 16 {
		return fmt.Errorf("udr: K length %d, want 16", len(s.K))
	}
	if len(s.OPc) != 16 {
		return fmt.Errorf("udr: OPc length %d, want 16", len(s.OPc))
	}
	if len(s.SQN) != 6 {
		return fmt.Errorf("udr: SQN length %d, want 6", len(s.SQN))
	}
	if len(s.AMFField) != 2 {
		return fmt.Errorf("udr: AMF field length %d, want 2", len(s.AMFField))
	}
	return nil
}

// ProvisionRequest adds or replaces a subscriber.
type ProvisionRequest struct {
	Subscriber Subscriber `json:"subscriber"`
}

// Empty is an empty response body.
type Empty struct{}

// NextAuthRequest fetches the subscriber's auth material and atomically
// advances the SQN for one new vector.
type NextAuthRequest struct {
	SUPI string `json:"supi"`
}

// NextAuthResponse returns the material the UDM feeds into AV generation.
// The long-term key K is deliberately NOT part of this response: it is
// delivered to the AKA execution environment (the eUDM P-AKA enclave or
// the monolithic function store) once at provisioning time, so the UDM VNF
// itself never handles it per request.
type NextAuthResponse struct {
	OPc      []byte `json:"opc"`
	SQN      []byte `json:"sqn"` // the SQN to use for this vector
	AMFField []byte `json:"amf_field"`
}

// NextAuthBatchRequest fetches the subscriber's auth material once and
// atomically advances the SQN Count times — the UDR half of an AV pool
// refill. One request replaces Count NextAuth round trips, and the
// per-refill SQN evolution is bit-identical to Count sequential NextAuth
// calls (the same advanceSQN per vector, under one stripe lock).
type NextAuthBatchRequest struct {
	SUPI  string `json:"supi"`
	Count int    `json:"count"`
}

// NextAuthBatchResponse carries the shared material once plus the Count
// advanced sequence numbers, concatenated oldest first (6 bytes each).
type NextAuthBatchResponse struct {
	OPc      []byte `json:"opc"`
	AMFField []byte `json:"amf_field"`
	// SQNs is Count six-byte sequence numbers, back to back.
	SQNs []byte `json:"sqns"`
}

// SQN returns the i-th six-byte sequence number of the batch.
func (r *NextAuthBatchResponse) SQN(i int) []byte {
	return r.SQNs[i*sqnLen : (i+1)*sqnLen : (i+1)*sqnLen]
}

// Vectors reports how many sequence numbers the batch carries.
func (r *NextAuthBatchResponse) Vectors() int { return len(r.SQNs) / sqnLen }

// sqnLen is the wire size of one sequence number.
const sqnLen = 6

// maxNextAuthBatch bounds one batch request; pool refills are single-digit.
const maxNextAuthBatch = 1024

// ResyncRequest overwrites the network SQN after a UE resynchronisation:
// the new value starts above the UE's reported SQN_MS.
type ResyncRequest struct {
	SUPI  string `json:"supi"`
	SQNMS []byte `json:"sqn_ms"`
}

// GetRequest reads a subscriber record without advancing state.
type GetRequest struct {
	SUPI string `json:"supi"`
}

// GetResponse returns the stored record.
type GetResponse struct {
	Subscriber Subscriber `json:"subscriber"`
}

// UDR is the repository.
type UDR struct {
	server *sbi.Server

	// subs is lock-striped by SUPI: the per-record SQN advance stays
	// atomic (stripe write lock) while unrelated subscribers proceed in
	// parallel.
	subs *shard.Map[string, *Subscriber]
}

// New creates a UDR and registers its SBI server.
func New(env *costmodel.Env, registry *sbi.Registry) (*UDR, error) {
	u := &UDR{
		server: sbi.NewServer(ServiceName, env),
		subs:   shard.NewString[*Subscriber](),
	}
	u.server.HandleDual(PathProvision, sbi.BinHandler(u.handleProvision))
	u.server.HandleDual(PathNextAuth, sbi.BinHandler(u.handleNextAuth))
	u.server.HandleDual(PathNextAuthBatch, sbi.BinHandler(u.handleNextAuthBatch))
	u.server.HandleDual(PathResync, sbi.BinHandler(u.handleResync))
	u.server.HandleDual(PathGet, sbi.BinHandler(u.handleGet))
	if err := registry.Register(u.server); err != nil {
		return nil, err
	}
	return u, nil
}

func (u *UDR) handleProvision(_ context.Context, req *ProvisionRequest) (*Empty, error) {
	s := req.Subscriber
	if err := s.validate(); err != nil {
		return nil, sbi.Problem(400, "Bad Request", "MANDATORY_IE_INCORRECT", "%v", err)
	}
	cp := s
	cp.K = append([]byte(nil), s.K...)
	cp.OPc = append([]byte(nil), s.OPc...)
	cp.SQN = append([]byte(nil), s.SQN...)
	cp.AMFField = append([]byte(nil), s.AMFField...)
	u.subs.Store(s.SUPI, &cp)
	return &Empty{}, nil
}

func (u *UDR) handleNextAuth(_ context.Context, req *NextAuthRequest) (*NextAuthResponse, error) {
	var resp *NextAuthResponse
	u.subs.Update(req.SUPI, func(s *Subscriber, ok bool) {
		if !ok {
			return
		}
		// Advance the SQN first, then hand out the new value, so that
		// two consecutive vectors never share a sequence number. One
		// backing array carries all three copied fields.
		advanceSQN(s.SQN, sqnStep)
		buf := make([]byte, 0, len(s.OPc)+sqnLen+len(s.AMFField))
		buf = append(buf, s.OPc...)
		buf = append(buf, s.SQN...)
		buf = append(buf, s.AMFField...)
		resp = &NextAuthResponse{
			OPc:      buf[:len(s.OPc):len(s.OPc)],
			SQN:      buf[len(s.OPc) : len(s.OPc)+sqnLen : len(s.OPc)+sqnLen],
			AMFField: buf[len(s.OPc)+sqnLen:],
		}
	})
	if resp == nil {
		return nil, sbi.Problem(404, "Not Found", "USER_NOT_FOUND", "subscriber %s", req.SUPI)
	}
	return resp, nil
}

// handleNextAuthBatch advances the SQN Count times under one stripe lock
// and returns the shared material once. The state evolution is exactly
// Count sequential NextAuth calls; only the wire shape is batched.
func (u *UDR) handleNextAuthBatch(_ context.Context, req *NextAuthBatchRequest) (*NextAuthBatchResponse, error) {
	if req.Count < 1 || req.Count > maxNextAuthBatch {
		return nil, sbi.Problem(400, "Bad Request", "MANDATORY_IE_INCORRECT", "batch count %d", req.Count)
	}
	var resp *NextAuthBatchResponse
	u.subs.Update(req.SUPI, func(s *Subscriber, ok bool) {
		if !ok {
			return
		}
		buf := make([]byte, 0, len(s.OPc)+len(s.AMFField)+req.Count*sqnLen)
		buf = append(buf, s.OPc...)
		buf = append(buf, s.AMFField...)
		shared := len(buf)
		for i := 0; i < req.Count; i++ {
			advanceSQN(s.SQN, sqnStep)
			buf = append(buf, s.SQN...)
		}
		resp = &NextAuthBatchResponse{
			OPc:      buf[:len(s.OPc):len(s.OPc)],
			AMFField: buf[len(s.OPc):shared:shared],
			SQNs:     buf[shared:],
		}
	})
	if resp == nil {
		return nil, sbi.Problem(404, "Not Found", "USER_NOT_FOUND", "subscriber %s", req.SUPI)
	}
	return resp, nil
}

func (u *UDR) handleResync(_ context.Context, req *ResyncRequest) (*Empty, error) {
	if len(req.SQNMS) != 6 {
		return nil, sbi.Problem(400, "Bad Request", "MANDATORY_IE_INCORRECT", "SQN_MS length %d", len(req.SQNMS))
	}
	found := false
	u.subs.Update(req.SUPI, func(s *Subscriber, ok bool) {
		if !ok {
			return
		}
		found = true
		copy(s.SQN, req.SQNMS)
		advanceSQN(s.SQN, sqnStep)
	})
	if !found {
		return nil, sbi.Problem(404, "Not Found", "USER_NOT_FOUND", "subscriber %s", req.SUPI)
	}
	return &Empty{}, nil
}

func (u *UDR) handleGet(_ context.Context, req *GetRequest) (*GetResponse, error) {
	// Copy under the stripe lock: a concurrent NextAuth mutates SQN in
	// place.
	var cp *Subscriber
	u.subs.Update(req.SUPI, func(s *Subscriber, ok bool) {
		if !ok {
			return
		}
		c := *s
		c.K = append([]byte(nil), s.K...)
		c.OPc = append([]byte(nil), s.OPc...)
		c.SQN = append([]byte(nil), s.SQN...)
		c.AMFField = append([]byte(nil), s.AMFField...)
		cp = &c
	})
	if cp == nil {
		return nil, sbi.Problem(404, "Not Found", "USER_NOT_FOUND", "subscriber %s", req.SUPI)
	}
	return &GetResponse{Subscriber: *cp}, nil
}

// SubscriberCount reports the number of provisioned subscribers.
func (u *UDR) SubscriberCount() int {
	return u.subs.Len()
}

// advanceSQN adds step to the 48-bit big-endian sequence number in place,
// wrapping modulo 2^48.
func advanceSQN(sqn []byte, step uint64) {
	var buf [8]byte
	copy(buf[2:], sqn)
	v := binary.BigEndian.Uint64(buf[:])
	v = (v + step) & 0xFFFFFFFFFFFF
	binary.BigEndian.PutUint64(buf[:], v)
	copy(sqn, buf[2:])
}

// Client is the UDM-side helper for UDR calls.
type Client struct {
	invoker sbi.Invoker
}

// NewClient wraps an SBI transport for UDR calls.
func NewClient(invoker sbi.Invoker) *Client { return &Client{invoker: invoker} }

// Provision installs a subscriber record.
func (c *Client) Provision(ctx context.Context, s Subscriber) error {
	//shieldlint:ignore secretflow provisioning is the one sanctioned K transfer (operator onboarding), modelled after the paper's degraded pre-HMEE baseline
	return c.invoker.Post(ctx, ServiceName, PathProvision, &ProvisionRequest{Subscriber: s}, nil)
}

// NextAuth fetches auth material and advances the SQN.
func (c *Client) NextAuth(ctx context.Context, supi string) (*NextAuthResponse, error) {
	var resp NextAuthResponse
	if err := c.invoker.Post(ctx, ServiceName, PathNextAuth, &NextAuthRequest{SUPI: supi}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// NextAuthBatch fetches auth material once and advances the SQN count
// times, returning the per-vector sequence numbers oldest first.
func (c *Client) NextAuthBatch(ctx context.Context, supi string, count int) (*NextAuthBatchResponse, error) {
	var resp NextAuthBatchResponse
	if err := c.invoker.Post(ctx, ServiceName, PathNextAuthBatch, &NextAuthBatchRequest{SUPI: supi, Count: count}, &resp); err != nil {
		return nil, err
	}
	if resp.Vectors() != count || len(resp.SQNs)%sqnLen != 0 {
		return nil, sbi.Problem(500, "Internal Server Error", "SYSTEM_FAILURE",
			"next-auth batch returned %d bytes of SQNs for count %d", len(resp.SQNs), count)
	}
	return &resp, nil
}

// Resync rebases the network SQN after UE resynchronisation.
func (c *Client) Resync(ctx context.Context, supi string, sqnMS []byte) error {
	return c.invoker.Post(ctx, ServiceName, PathResync, &ResyncRequest{SUPI: supi, SQNMS: sqnMS}, nil)
}

// Get reads a subscriber record. The full record includes K, which is
// why only the UDM's reprovisioning path (the paper's non-shielded
// baseline) calls this; shielded deployments fetch vectors via NextAuth.
func (c *Client) Get(ctx context.Context, supi string) (*Subscriber, error) {
	var resp GetResponse
	//shieldlint:ignore secretflow baseline (non-HMEE) reprovisioning path; shielded slices use NextAuth and K stays in the enclave store
	if err := c.invoker.Post(ctx, ServiceName, PathGet, &GetRequest{SUPI: supi}, &resp); err != nil {
		return nil, err
	}
	return &resp.Subscriber, nil
}
