package sbi

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"shield5g/internal/sbi/codec"
	"shield5g/internal/simclock"
)

// meterFixture builds a registered server with an armed load meter and a
// client, plus the env that stamps virtual time.
func meterFixture(t *testing.T, cfg OverloadConfig) (*Server, *Client) {
	t.Helper()
	env := newEnv()
	reg := NewRegistry()
	srv := echoServer(t, env)
	srv.EnableOverload(env, cfg)
	if err := reg.Register(srv); err != nil {
		t.Fatalf("Register: %v", err)
	}
	return srv, NewClient("ausf", env, reg)
}

func TestPriorityContextHelpers(t *testing.T) {
	ctx := context.Background()
	if got := PriorityFrom(ctx); got != PriorityFresh {
		t.Fatalf("unstamped priority = %v, want fresh", got)
	}
	for _, p := range []Priority{PriorityFresh, PriorityReattach, PriorityEmergency} {
		if got := PriorityFrom(WithPriority(ctx, p)); got != p {
			t.Fatalf("roundtrip(%v) = %v", p, got)
		}
	}
	if PriorityEmergency.String() != "emergency" || PriorityFresh.String() != "fresh" {
		t.Fatal("priority names wrong")
	}
	// Re-stamping the same class must not grow the context chain.
	stamped := WithPriority(ctx, PriorityReattach)
	if WithPriority(stamped, PriorityReattach) != stamped {
		t.Fatal("re-stamping same priority allocated a new context")
	}
}

func TestMeterDisarmedIsInert(t *testing.T) {
	srv, c := meterFixture(t, OverloadConfig{ServiceCycles: 1000, MaxQueue: 1})
	if _, ok := srv.CurrentOCI(); ok {
		t.Fatal("disarmed meter advertised an OCI")
	}
	// Far beyond MaxQueue with zero drain: a disarmed meter never sheds.
	for i := 0; i < 10; i++ {
		if err := c.Post(context.Background(), "udm", "/echo", &echoReq{Value: "x"}, nil); err != nil {
			t.Fatalf("Post %d through disarmed meter: %v", i, err)
		}
	}
	if st := srv.OverloadStats(); st.TotalShed() != 0 || st.Served != [3]uint64{} {
		t.Fatalf("disarmed meter counted traffic: %+v", st)
	}
}

func TestMeterShedsBeyondQueueAndExemptsEmergency(t *testing.T) {
	srv, c := meterFixture(t, OverloadConfig{ServiceCycles: 1000, MaxQueue: 2})
	srv.SetOverloadArmed(true)

	// All arrivals at the same virtual instant: no drain between them.
	ctx := simclock.WithArrival(context.Background(), 0)
	var shed *ProblemDetails
	for i := 0; i < 5; i++ {
		err := c.Post(ctx, "udm", "/echo", &echoReq{Value: "x"}, nil)
		if err != nil {
			if pd, ok := AsProblem(err); ok && pd.Cause == CauseOverload {
				shed = pd
				continue
			}
			t.Fatalf("Post %d: %v", i, err)
		}
	}
	if shed == nil {
		t.Fatal("no request shed with a full bounded queue")
	}
	if shed.Status != 503 || !Retryable(shed) {
		t.Fatalf("shed = %+v, want retryable 503", shed)
	}
	if shed.RetryAfter <= 0 || shed.OCI == nil {
		t.Fatalf("shed missing Retry-After/OCI: %+v", shed)
	}

	// Emergency traffic is exempt even with the queue saturated.
	ectx := WithPriority(ctx, PriorityEmergency)
	if err := c.Post(ectx, "udm", "/echo", &echoReq{Value: "sos"}, nil); err != nil {
		t.Fatalf("emergency Post through full queue: %v", err)
	}

	st := srv.OverloadStats()
	if st.Shed[PriorityFresh] == 0 || st.Shed[PriorityEmergency] != 0 {
		t.Fatalf("shed counters = %v", st.Shed)
	}
	if st.Served[PriorityEmergency] != 1 {
		t.Fatalf("emergency served = %d, want 1", st.Served[PriorityEmergency])
	}
	if st.PeakQueue < 2 {
		t.Fatalf("peak queue = %d, want >= 2", st.PeakQueue)
	}
}

func TestMeterDrainsOnArrivalAxis(t *testing.T) {
	srv, c := meterFixture(t, OverloadConfig{ServiceCycles: 1000, MaxQueue: 2})
	srv.SetOverloadArmed(true)

	base := context.Background()
	fill := simclock.WithArrival(base, 0)
	sheds := 0
	for i := 0; i < 4; i++ {
		if err := c.Post(fill, "udm", "/echo", &echoReq{Value: "x"}, nil); err != nil {
			sheds++
		}
	}
	if sheds == 0 {
		t.Fatal("queue never filled")
	}
	// An arrival far enough in the future drains the whole backlog.
	late := simclock.WithArrival(base, 1_000_000)
	if err := c.Post(late, "udm", "/echo", &echoReq{Value: "x"}, nil); err != nil {
		t.Fatalf("Post after drain window: %v", err)
	}
	if st := srv.OverloadStats(); st.Load >= 100 {
		t.Fatalf("load did not decay after drain: %d", st.Load)
	}
}

func TestMeterChargesFIFOWait(t *testing.T) {
	srv, c := meterFixture(t, OverloadConfig{ServiceCycles: 2_000_000, MaxQueue: 8})
	srv.SetOverloadArmed(true)

	post := func() simclock.Cycles {
		var acct simclock.Account
		ctx := simclock.WithAccount(simclock.WithArrival(context.Background(), 0), &acct)
		if err := c.Post(ctx, "udm", "/echo", &echoReq{Value: "x"}, nil); err != nil {
			t.Fatalf("Post: %v", err)
		}
		return acct.Total()
	}
	post() // first contact: pays the TLS handshake, skews the comparison
	second := post()
	third := post()
	// Each same-instant arrival waits behind one more queued service cost
	// than the previous; the difference must show the extra queued work.
	if third < second+1_500_000 {
		t.Fatalf("FIFO wait not charged: second=%d third=%d", second, third)
	}
	if st := srv.OverloadStats(); st.QueueDelay <= 0 {
		t.Fatalf("queue delay not accounted: %+v", st)
	}
}

func TestOCIPropagatesToClientTable(t *testing.T) {
	srv, c := meterFixture(t, OverloadConfig{ServiceCycles: 1000, MaxQueue: 4})
	// External backpressure pushes advertised load over target without
	// needing a real backlog.
	srv.SetLoadBias(func() float64 { return 0.95 })
	srv.SetOverloadArmed(true)

	if _, ok := c.PeerOCI("udm"); ok {
		t.Fatal("client had an OCI before any exchange")
	}
	ctx := simclock.WithArrival(context.Background(), 0)
	if err := c.Post(ctx, "udm", "/echo", &echoReq{Value: "x"}, nil); err != nil {
		t.Fatalf("Post: %v", err)
	}
	oci, ok := c.PeerOCI("udm")
	if !ok {
		t.Fatal("no OCI recorded after exchange")
	}
	if oci.Load < 90 || oci.Reduction <= 0 {
		t.Fatalf("oci = %+v, want high load with reduction", oci)
	}

	// A stale advert (lower Seq) must not overwrite the fresh one.
	c.oci.record("udm", OCI{Load: 1, Seq: 0})
	if got, _ := c.PeerOCI("udm"); got.Load != oci.Load {
		t.Fatalf("stale advert overwrote fresh one: %+v", got)
	}
}

// fixedOCI is an OCISource advertising one static record.
type fixedOCI struct{ oci OCI }

func (f fixedOCI) PeerOCI(string) (OCI, bool) { return f.oci, true }

func TestThrottleDefersProportionallyAndExemptsEmergency(t *testing.T) {
	env := newEnv()
	calls := 0
	inner := invokerFunc(func(context.Context, string, string, any, any) error {
		calls++
		return nil
	})
	r := NewResilient(inner, env, ResilienceConfig{
		Retry:          RetryPolicy{MaxAttempts: 4, InitialBackoff: time.Millisecond},
		DisableBreaker: true,
		Peers:          fixedOCI{OCI{Load: 95, Reduction: 90, RetryAfter: 50 * time.Millisecond}},
		Throttle:       true,
	})

	const n = 40
	for i := 0; i < n; i++ {
		var acct simclock.Account
		ctx := simclock.WithAccount(context.Background(), &acct)
		ctx = simclock.WithJitter(ctx, simclock.NewJitter(uint64(i+1)))
		_ = r.Post(ctx, "udm", "/x", nil, nil)
	}
	st := r.Stats()
	if st.Throttled == 0 {
		t.Fatal("90% reduction advert never throttled")
	}
	// A 90% reduction should defer far more than half of first attempts.
	if st.Throttled < n/2 {
		t.Fatalf("throttled = %d of %d first attempts, want >= %d", st.Throttled, n, n/2)
	}
	if st.RetryAfterHonored == 0 {
		t.Fatal("peer Retry-After floor never honoured")
	}

	// Emergency-class requests must never be deferred.
	before := r.Stats().Throttled
	ectx := WithPriority(context.Background(), PriorityEmergency)
	for i := 0; i < 10; i++ {
		if err := r.Post(ectx, "udm", "/x", nil, nil); err != nil {
			t.Fatalf("emergency Post: %v", err)
		}
	}
	if after := r.Stats().Throttled; after != before {
		t.Fatalf("emergency traffic throttled: %d -> %d", before, after)
	}
}

func TestEmergencyBypassesBreaker(t *testing.T) {
	env := newEnv()
	inner := invokerFunc(func(ctx context.Context, _, _ string, _, _ any) error {
		if PriorityFrom(ctx) == PriorityEmergency {
			return nil
		}
		return Problem(503, "Service Unavailable", CauseUnreachable, "down")
	})
	r := NewResilient(inner, env, ResilienceConfig{
		Retry:   RetryPolicy{MaxAttempts: 1, InitialBackoff: time.Millisecond},
		Breaker: BreakerConfig{FailureThreshold: 2, OpenTimeout: time.Hour, HalfOpenProbes: 1},
	})

	// Non-emergency failures open the circuit...
	for i := 0; i < 4; i++ {
		_ = r.Post(context.Background(), "udm", "/x", nil, nil)
	}
	if st := r.BreakerFor("udm").Stats(); st.State != BreakerOpen {
		t.Fatalf("breaker state = %v, want open", st.State)
	}
	err := r.Post(context.Background(), "udm", "/x", nil, nil)
	if !HasCause(err, CauseCircuitOpen) {
		t.Fatalf("non-emergency error = %v, want CIRCUIT_OPEN", err)
	}
	// ...but emergency traffic goes straight through the open circuit.
	ectx := WithPriority(context.Background(), PriorityEmergency)
	if err := r.Post(ectx, "udm", "/x", nil, nil); err != nil {
		t.Fatalf("emergency Post through open circuit: %v", err)
	}
}

// TestProblemDetailsBinaryJSONParity is the golden parity test for error
// fidelity on the binary SBI path (satellite: a 503 OVERLOAD with
// Retry-After and an OCI must classify identically after a binary round
// trip and after a JSON one).
func TestProblemDetailsBinaryJSONParity(t *testing.T) {
	cases := []*ProblemDetails{
		func() *ProblemDetails {
			pd := Problem(503, "Service Unavailable", CauseOverload, "udm/auth: queue full (12 queued), fresh-class request shed")
			pd.RetryAfter = 36 * time.Millisecond
			pd.OCI = &OCI{Load: 97, Reduction: 90, RetryAfter: 36 * time.Millisecond, Seq: 41}
			return pd
		}(),
		func() *ProblemDetails {
			pd := Problem(429, "Too Many Requests", CauseCongestion, "slow down")
			pd.RetryAfter = 5 * time.Millisecond
			return pd
		}(),
		Problem(403, "Forbidden", "AUTHENTICATION_REJECTED", "permanent"),
	}
	for _, pd := range cases {
		// Binary round trip through the frame codec.
		frame, err := MarshalBinary(pd)
		if err != nil {
			t.Fatalf("MarshalBinary: %v", err)
		}
		var fromBin ProblemDetails
		if err := DecodeBody(frame, &fromBin); err != nil {
			t.Fatalf("DecodeBody: %v", err)
		}
		ReleaseBody(frame)

		// JSON round trip.
		data, err := json.Marshal(pd)
		if err != nil {
			t.Fatalf("json.Marshal: %v", err)
		}
		var fromJSON ProblemDetails
		if err := json.Unmarshal(data, &fromJSON); err != nil {
			t.Fatalf("json.Unmarshal: %v", err)
		}

		if !reflect.DeepEqual(&fromBin, &fromJSON) {
			t.Fatalf("binary/JSON divergence:\n  bin  = %+v\n  json = %+v", &fromBin, &fromJSON)
		}
		if !reflect.DeepEqual(&fromBin, pd) {
			t.Fatalf("binary round trip lost fields:\n  got  = %+v\n  want = %+v", &fromBin, pd)
		}
		if Retryable(&fromBin) != Retryable(pd) || Retryable(&fromJSON) != Retryable(pd) {
			t.Fatalf("retryable classification diverged for %+v", pd)
		}
	}
}

// TestOverloadShedOverNegotiatedBinarySession pins the end-to-end shape:
// a shed on a negotiated binary path classifies exactly like the JSON
// path — same cause, same status, Retry-After and OCI intact.
func TestOverloadShedOverNegotiatedBinarySession(t *testing.T) {
	env := newEnv()
	reg := NewRegistry()
	srv := NewServer("udm", env)
	srv.HandleDual("/auth", BinHandler(echoBin))
	srv.EnableOverload(env, OverloadConfig{ServiceCycles: 1000, MaxQueue: 1})
	if err := reg.Register(srv); err != nil {
		t.Fatalf("Register: %v", err)
	}
	c := NewClient("ausf", env, reg)
	c.EnableBinary()

	shedAt := func(c *Client) *ProblemDetails {
		t.Helper()
		ctx := simclock.WithArrival(context.Background(), 0)
		var last *ProblemDetails
		for i := 0; i < 4; i++ {
			var resp binMsg
			err := c.Post(ctx, "udm", "/auth", &binMsg{Value: "v", Blob: []byte{1}}, &resp)
			if err != nil {
				pd, ok := AsProblem(err)
				if !ok {
					t.Fatalf("Post %d: %v", i, err)
				}
				last = pd
			}
		}
		return last
	}

	postBin(t, c, "negotiate") // session open: JSON, switches path to frames
	srv.SetOverloadArmed(true)
	binShed := shedAt(c)
	srv.SetOverloadArmed(false)
	if binShed == nil {
		t.Fatal("no shed over the binary session")
	}

	// Same exercise through a JSON-only client against a fresh meter.
	jc := NewClient("ausf2", env, reg)
	srv.SetOverloadArmed(true)
	jsonShed := shedAt(jc)
	srv.SetOverloadArmed(false)
	if jsonShed == nil {
		t.Fatal("no shed over the JSON session")
	}

	if binShed.Status != jsonShed.Status || binShed.Cause != jsonShed.Cause {
		t.Fatalf("status/cause diverged: bin=%+v json=%+v", binShed, jsonShed)
	}
	if Retryable(binShed) != Retryable(jsonShed) {
		t.Fatal("retryable classification diverged across formats")
	}
	if binShed.RetryAfter <= 0 || binShed.OCI == nil {
		t.Fatalf("binary shed lost Retry-After/OCI: %+v", binShed)
	}
}

// TestProblemDetailsBinaryNilOCI pins the presence-byte encoding.
func TestProblemDetailsBinaryNilOCI(t *testing.T) {
	pd := Problem(503, "Service Unavailable", CauseOverload, "shed")
	dst := pd.AppendBinary(nil)
	var back ProblemDetails
	r := codec.NewReader(dst)
	if err := back.DecodeBinary(r); err != nil {
		t.Fatalf("DecodeBinary: %v", err)
	}
	if back.OCI != nil {
		t.Fatalf("nil OCI decoded as %+v", back.OCI)
	}
}
