package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestShardScaleFleetSpeedup is the acceptance check of the replica sweep:
// 8 replicas must deliver at least 3x the fleet registration throughput of
// the singleton, the same-seed replay must reproduce lane for lane, and
// every point must stay inside the section-9 allocation budget (< 100
// allocs per registration on the full fast path).
func TestShardScaleFleetSpeedup(t *testing.T) {
	cfg := Config{Seed: 7, Iterations: 160}
	r, err := ShardScale(context.Background(), cfg)
	if err != nil {
		t.Fatalf("ShardScale: %v", err)
	}
	if len(r.Points) != 4 {
		t.Fatalf("points = %d, want 4", len(r.Points))
	}
	for _, p := range r.Points {
		if p.Registered != r.UEs || p.Failed != 0 {
			t.Errorf("replicas=%d: Registered=%d Failed=%d, want %d/0", p.Replicas, p.Registered, p.Failed, r.UEs)
		}
		// The race-instrumented runtime's shadow allocations land in
		// MemStats, so the budget only holds on plain builds; the
		// committed baseline gates it in `make bench-compare` either way.
		if !raceEnabled && p.AllocsPerReg >= 100 {
			t.Errorf("replicas=%d: %.1f allocs/reg, budget is < 100", p.Replicas, p.AllocsPerReg)
		}
		if len(p.LaneRegistered) != p.Replicas {
			t.Errorf("replicas=%d: %d lanes reported", p.Replicas, len(p.LaneRegistered))
		}
	}
	// The singleton defines the baseline: fleet throughput == shared-clock
	// throughput when there is one lane.
	if one := r.Points[0]; one.FleetRegsPS != one.VirtualRegsPS {
		t.Errorf("singleton fleet rate %.1f != virtual rate %.1f", one.FleetRegsPS, one.VirtualRegsPS)
	}
	if r.SpeedupAt8 < 3 {
		t.Errorf("fleet speedup at 8 replicas = %.2fx, acceptance is >= 3x", r.SpeedupAt8)
	}
	if !r.Deterministic {
		t.Error("same-seed replay of the replicas-8 point diverged")
	}

	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "replica sweep") {
		t.Fatal("render missing header")
	}
	buf.Reset()
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	if !strings.Contains(buf.String(), "fleet_regs_per_sec") {
		t.Fatal("CSV missing header")
	}
}
