package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file implements the interprocedural half of shieldlint: a
// repo-scoped call graph over the already-type-checked packages, plus
// the per-function summary store (FactStore) analyzers use to publish
// and query facts across call edges. Everything is derived from the
// go/types info the loader already produces — no SSA, no x/tools.
//
// Resolution precision mirrors what the type information can support:
//
//   - Static calls (package functions, concrete methods) resolve to
//     exactly one callee.
//   - Calls through an interface method resolve to every method of
//     every named type in the program that implements the interface —
//     a sound over-approximation of dynamic dispatch.
//   - A function or method referenced as a value (assigned, passed,
//     returned) gets a Dynamic reference edge from the referencing
//     function: the value may be invoked later from anywhere, so the
//     referencer is treated as a potential caller.
//   - Calls through plain function-typed variables resolve to no
//     callee (Callees empty, Dynamic true); analyzers must treat them
//     as calls to unknown code.

// A Program is the unit the interprocedural analyzers operate on: the
// set of packages one shieldlint run loaded, the call graph over them,
// and the per-analyzer summary stores.
type Program struct {
	Pkgs []*Package

	cg    *CallGraph
	memo  map[string]any
	facts map[string]*FactStore
}

// NewProgram wraps an already-loaded package set. The call graph is
// built lazily on first use.
func NewProgram(pkgs []*Package) *Program {
	return &Program{
		Pkgs:  pkgs,
		memo:  make(map[string]any),
		facts: make(map[string]*FactStore),
	}
}

// CallGraph returns the program's call graph, building it on first use.
func (p *Program) CallGraph() *CallGraph {
	if p.cg == nil {
		p.cg = buildCallGraph(p)
	}
	return p.cg
}

// Memo builds a named result at most once per program. Analyzers that
// need whole-program precomputation (summaries, global lock-order
// edges) run per package, so they stash the expensive pass here and
// filter per-package findings out of it on each Run call.
func (p *Program) Memo(key string, build func() any) any {
	if v, ok := p.memo[key]; ok {
		return v
	}
	v := build()
	p.memo[key] = v
	return v
}

// Facts returns the named analyzer's summary store, creating it on
// first use. See doc.go ("Interprocedural engine") for the publishing
// discipline.
func (p *Program) Facts(analyzer string) *FactStore {
	s, ok := p.facts[analyzer]
	if !ok {
		s = &FactStore{m: make(map[*CallNode]any)}
		p.facts[analyzer] = s
	}
	return s
}

// A FactStore maps functions to one analyzer's per-function summaries.
// Stores are per-analyzer (no key collisions between analyzers) and
// per-program, so a summary computed while analyzing one package is
// visible when every other package is analyzed.
type FactStore struct {
	m map[*CallNode]any
}

// Set publishes a fact for n, replacing any previous fact.
func (s *FactStore) Set(n *CallNode, fact any) { s.m[n] = fact }

// Get returns the fact published for n, if any.
func (s *FactStore) Get(n *CallNode) (any, bool) {
	v, ok := s.m[n]
	return v, ok
}

// A CallNode is one function body in the program: a declared function
// or method (Func non-nil) or a function literal (Func nil).
type CallNode struct {
	// Func is the declared object, nil for function literals.
	Func *types.Func
	// Decl is the *ast.FuncDecl or *ast.FuncLit.
	Decl ast.Node
	Body *ast.BlockStmt
	Pkg  *Package
	// Sites lists the node's call sites and function-value references
	// in source order.
	Sites []*CallSite
}

// Name renders a stable human-readable identifier: the qualified
// function name, or func@file:line for literals.
func (n *CallNode) Name() string {
	if n.Func != nil {
		return n.Func.FullName()
	}
	pos := n.Pkg.Fset.Position(n.Decl.Pos())
	return fmt.Sprintf("func@%s:%d", pos.Filename, pos.Line)
}

// Pos returns the node's declaration position.
func (n *CallNode) Pos() token.Pos { return n.Decl.Pos() }

// ParamVars returns the declared parameter objects of the node in
// order, flattening grouped parameters ("a, b int").
func (n *CallNode) ParamVars() []*types.Var {
	var fields *ast.FieldList
	switch d := n.Decl.(type) {
	case *ast.FuncDecl:
		fields = d.Type.Params
	case *ast.FuncLit:
		fields = d.Type.Params
	}
	if fields == nil {
		return nil
	}
	var out []*types.Var
	for _, f := range fields.List {
		for _, name := range f.Names {
			if v, ok := n.Pkg.Info.Defs[name].(*types.Var); ok {
				out = append(out, v)
			}
		}
	}
	return out
}

// A CallSite is one outgoing edge bundle of a node: either a call
// expression (Call non-nil) or a bare function-value reference.
type CallSite struct {
	// Call is the call expression, nil for a function-value reference
	// (method value, function assigned/passed as a value).
	Call *ast.CallExpr
	Pos  token.Pos
	// Callees lists the possible targets with bodies in the program,
	// in deterministic order. Empty for calls into code outside the
	// program (standard library, function-typed variables).
	Callees []*CallNode
	// Dynamic marks over-approximated edges: interface dispatch,
	// function-value references, and unresolved indirect calls.
	Dynamic bool
	// StaticCallee is the type-checker-resolved callee object even
	// when its body is outside the program (e.g. a stdlib function);
	// nil for indirect calls.
	StaticCallee *types.Func
}

// A CallGraph indexes every function body in the program.
type CallGraph struct {
	nodes  map[ast.Node]*CallNode
	byFunc map[*types.Func]*CallNode
	// funcs holds all nodes sorted by source position, the iteration
	// order every deterministic traversal uses.
	funcs []*CallNode
}

// Functions returns all nodes in deterministic (source-position) order.
func (g *CallGraph) Functions() []*CallNode { return g.funcs }

// NodeOf returns the node for a declared function or method, or nil if
// its body is not part of the program.
func (g *CallGraph) NodeOf(fn *types.Func) *CallNode { return g.byFunc[fn] }

// NodeAt returns the node for a FuncDecl or FuncLit AST node, or nil.
func (g *CallGraph) NodeAt(decl ast.Node) *CallNode { return g.nodes[decl] }

// PostOrder returns the nodes callee-first: a node appears after every
// node it calls, except within call cycles (recursion), where members
// appear in DFS finish order. Summary computations iterate this order
// so callee facts exist before callers ask for them; recursive edges
// see whatever has been published so far and must default
// conservatively.
func (g *CallGraph) PostOrder() []*CallNode {
	seen := make(map[*CallNode]bool, len(g.funcs))
	out := make([]*CallNode, 0, len(g.funcs))
	var visit func(n *CallNode)
	visit = func(n *CallNode) {
		if seen[n] {
			return
		}
		seen[n] = true
		for _, s := range n.Sites {
			for _, c := range s.Callees {
				visit(c)
			}
		}
		out = append(out, n)
	}
	for _, n := range g.funcs {
		visit(n)
	}
	return out
}

func buildCallGraph(prog *Program) *CallGraph {
	g := &CallGraph{
		nodes:  make(map[ast.Node]*CallNode),
		byFunc: make(map[*types.Func]*CallNode),
	}

	// Pass 1: one node per function body (declared or literal).
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch d := n.(type) {
				case *ast.FuncDecl:
					if d.Body == nil {
						return true
					}
					node := &CallNode{Decl: d, Body: d.Body, Pkg: pkg}
					if fn, ok := pkg.Info.Defs[d.Name].(*types.Func); ok {
						node.Func = fn
						g.byFunc[fn] = node
					}
					g.nodes[d] = node
				case *ast.FuncLit:
					g.nodes[d] = &CallNode{Decl: d, Body: d.Body, Pkg: pkg}
				}
				return true
			})
		}
	}

	for _, n := range g.nodes {
		g.funcs = append(g.funcs, n)
	}
	sort.Slice(g.funcs, func(i, j int) bool {
		a := g.funcs[i].Pkg.Fset.Position(g.funcs[i].Pos())
		b := g.funcs[j].Pkg.Fset.Position(g.funcs[j].Pos())
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})

	impl := newImplementerIndex(prog)

	// Pass 2: resolve each node's call sites and value references.
	for _, n := range g.funcs {
		g.resolveSites(n, impl)
	}
	return g
}

// resolveSites walks one node's body (excluding nested literals, which
// own their statements) collecting calls and function-value references.
func (g *CallGraph) resolveSites(n *CallNode, impl *implementerIndex) {
	info := n.Pkg.Info
	// calleeExprs marks the Fun idents of direct calls so the value-
	// reference scan below does not double-count them.
	calleeExprs := make(map[ast.Expr]bool)

	walkOwnStmts(n, func(stmt ast.Node) {
		ast.Inspect(stmt, func(x ast.Node) bool {
			if _, ok := x.(*ast.FuncLit); ok && x != n.Decl {
				// A nested literal's calls belong to its own node, but
				// referencing the literal is itself a potential call.
				n.Sites = append(n.Sites, &CallSite{
					Pos:     x.Pos(),
					Callees: []*CallNode{g.nodes[x]},
					Dynamic: true,
				})
				return false
			}
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			fun := ast.Unparen(call.Fun)
			calleeExprs[fun] = true
			if ix, ok := fun.(*ast.IndexExpr); ok {
				// Explicit generic instantiation f[T](...) — the callee
				// ident is underneath the index.
				calleeExprs[ast.Unparen(ix.X)] = true
			}
			if ix, ok := fun.(*ast.IndexListExpr); ok {
				calleeExprs[ast.Unparen(ix.X)] = true
			}
			n.Sites = append(n.Sites, g.resolveCall(n, call, impl))
			return true
		})
	})

	// Value references: a *types.Func used outside call position.
	var scanRefs func(x ast.Node) bool
	scanRefs = func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		addRef := func(id *ast.Ident) {
			fn, ok := info.Uses[id].(*types.Func)
			if !ok {
				return
			}
			if target := g.byFunc[fn.Origin()]; target != nil {
				n.Sites = append(n.Sites, &CallSite{
					Pos:     id.Pos(),
					Callees: []*CallNode{target},
					Dynamic: true,
				})
			}
		}
		switch e := x.(type) {
		case *ast.SelectorExpr:
			// Handle the selector head here (skipping call-position
			// selectors) and descend only into the base expression, so
			// x.M() does not double-count M as a value reference.
			if !calleeExprs[e] {
				addRef(e.Sel)
			}
			ast.Inspect(e.X, scanRefs)
			return false
		case *ast.Ident:
			if !calleeExprs[e] {
				addRef(e)
			}
		}
		return true
	}
	walkOwnStmts(n, func(stmt ast.Node) { ast.Inspect(stmt, scanRefs) })

	sort.SliceStable(n.Sites, func(i, j int) bool { return n.Sites[i].Pos < n.Sites[j].Pos })
}

// resolveCall classifies one call expression.
func (g *CallGraph) resolveCall(n *CallNode, call *ast.CallExpr, impl *implementerIndex) *CallSite {
	site := &CallSite{Call: call, Pos: call.Pos()}
	fn := staticCallee(n.Pkg.Info, call)
	if fn == nil {
		// Indirect call through a function-typed value, a builtin, or a
		// type conversion: no static target.
		site.Dynamic = true
		return site
	}
	site.StaticCallee = fn
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		if iface, ok := recv.Type().Underlying().(*types.Interface); ok {
			// Interface dispatch: over-approximate with every
			// implementing type's method.
			site.Dynamic = true
			site.Callees = impl.methods(g, iface, fn.Name())
			return site
		}
	}
	if target := g.byFunc[fn.Origin()]; target != nil {
		site.Callees = []*CallNode{target}
	}
	return site
}

// walkOwnStmts applies f to each top-level statement of the node's
// body. f receives statements; nested FuncLits are pruned by callers.
func walkOwnStmts(n *CallNode, f func(ast.Node)) {
	for _, stmt := range n.Body.List {
		f(stmt)
	}
}

// staticCallee resolves the declared function or method a call invokes,
// unwrapping generic instantiation expressions; nil for calls through
// function-typed values, builtins and conversions.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(ix.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(ix.X)
	}
	switch e := fun.(type) {
	case *ast.Ident:
		f, _ := info.Uses[e].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[e.Sel].(*types.Func)
		return f
	}
	return nil
}

// implementerIndex enumerates the program's named non-interface types
// once, in deterministic order, for interface-dispatch resolution.
type implementerIndex struct {
	named []*types.Named
	// cache memoizes (interface, method) -> callee list.
	cache map[implKey][]*CallNode
}

type implKey struct {
	iface  *types.Interface
	method string
}

func newImplementerIndex(prog *Program) *implementerIndex {
	idx := &implementerIndex{cache: make(map[implKey][]*CallNode)}
	for _, pkg := range prog.Pkgs {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		names := scope.Names() // already sorted
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			idx.named = append(idx.named, named)
		}
	}
	return idx
}

// methods returns the program-resident implementations of the named
// interface method, deterministically ordered.
func (idx *implementerIndex) methods(g *CallGraph, iface *types.Interface, name string) []*CallNode {
	key := implKey{iface, name}
	if out, ok := idx.cache[key]; ok {
		return out
	}
	var out []*CallNode
	for _, named := range idx.named {
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		sel := types.NewMethodSet(ptr).Lookup(named.Obj().Pkg(), name)
		if sel == nil {
			continue
		}
		fn, ok := sel.Obj().(*types.Func)
		if !ok {
			continue
		}
		if node := g.byFunc[fn.Origin()]; node != nil {
			out = append(out, node)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	idx.cache[key] = out
	return out
}
