// Package upf implements a minimal User Plane Function: N4 (PFCP-style)
// session establishment from the SMF and an N3 data path that tunnels UE
// traffic, enough to measure end-to-end session setup and verify that a
// registered UE can actually move data (the paper's OTA feasibility
// criterion).
package upf

import (
	"context"
	"fmt"
	"sync"

	"shield5g/internal/costmodel"
	"shield5g/internal/sbi"
	"shield5g/internal/simclock"
)

// Service identity.
const (
	ServiceName = "upf"
	NFType      = "UPF"
)

// SBI endpoint paths (PFCP runs over its own protocol in a real core; the
// simulation carries it over the modelled SBI transport).
const (
	PathEstablish = "/n4/v1/sessions/establish"
	PathRelease   = "/n4/v1/sessions/release"
)

// EstablishRequest installs a forwarding session.
type EstablishRequest struct {
	SEID      uint64 `json:"seid"` // session endpoint ID
	UEAddress string `json:"ue_address"`
}

// EstablishResponse confirms with the uplink tunnel ID.
type EstablishResponse struct {
	TEID uint32 `json:"teid"`
}

// ReleaseRequest tears a session down.
type ReleaseRequest struct {
	SEID uint64 `json:"seid"`
}

// Empty is an empty response body.
type Empty struct{}

// session is one installed forwarding rule.
type session struct {
	teid      uint32
	ueAddress string
}

// UPF is the user-plane anchor.
type UPF struct {
	env    *costmodel.Env
	server *sbi.Server

	mu       sync.Mutex
	sessions map[uint64]*session
	nextTEID uint32
}

// New creates a UPF and registers its N4 server.
func New(env *costmodel.Env, registry *sbi.Registry) (*UPF, error) {
	u := &UPF{
		env:      env,
		server:   sbi.NewServer(ServiceName, env),
		sessions: make(map[uint64]*session),
	}
	u.server.Handle(PathEstablish, sbi.JSONHandler(u.handleEstablish))
	u.server.Handle(PathRelease, sbi.JSONHandler(u.handleRelease))
	if err := registry.Register(u.server); err != nil {
		return nil, err
	}
	return u, nil
}

func (u *UPF) handleEstablish(_ context.Context, req *EstablishRequest) (*EstablishResponse, error) {
	if req.UEAddress == "" {
		return nil, sbi.Problem(400, "Bad Request", "MANDATORY_IE_MISSING", "UE address required")
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	if _, dup := u.sessions[req.SEID]; dup {
		return nil, sbi.Problem(409, "Conflict", "SESSION_EXISTS", "SEID %d", req.SEID)
	}
	u.nextTEID++
	u.sessions[req.SEID] = &session{teid: u.nextTEID, ueAddress: req.UEAddress}
	return &EstablishResponse{TEID: u.nextTEID}, nil
}

func (u *UPF) handleRelease(_ context.Context, req *ReleaseRequest) (*Empty, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if _, ok := u.sessions[req.SEID]; !ok {
		return nil, sbi.Problem(404, "Not Found", "SESSION_NOT_FOUND", "SEID %d", req.SEID)
	}
	delete(u.sessions, req.SEID)
	return &Empty{}, nil
}

// SessionCount reports installed sessions.
func (u *UPF) SessionCount() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return len(u.sessions)
}

// ForwardUplink is the N3 data path: the gNB tunnels a UE packet by TEID;
// the UPF forwards it to the data network and returns the response (an
// echo in this simulation — the Test/-1 connection of the paper's OTA
// test). It charges GTP encapsulation and forwarding costs.
func (u *UPF) ForwardUplink(ctx context.Context, teid uint32, payload []byte) ([]byte, error) {
	u.mu.Lock()
	var found *session
	for _, s := range u.sessions {
		if s.teid == teid {
			found = s
			break
		}
	}
	u.mu.Unlock()
	if found == nil {
		return nil, fmt.Errorf("upf: no session for TEID %d", teid)
	}
	m := u.env.Model
	u.env.Charge(ctx, m.LoopbackRTT/2+simclock.Cycles(len(payload))*m.CopyPerByte)
	echo := append([]byte("dn-echo:"), payload...)
	return echo, nil
}
