// Package experiments regenerates every table and figure of the paper's
// evaluation (§V): enclave load time (Fig. 7), the thread/EPC sweep
// (Fig. 8), functional and total latency (Fig. 9), response times
// (Fig. 10), the overhead summary (Table II), SGX operation statistics
// (Table III), the end-to-end session setup analysis (§V-B4), and the OTA
// feasibility test (§V-B6). Each experiment returns structured results and
// renders the same rows/series the paper reports.
package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"shield5g/internal/costmodel"
	"shield5g/internal/crypto/milenage"
	"shield5g/internal/crypto/suci"
	"shield5g/internal/deploy"
	"shield5g/internal/hmee/sgx"
	"shield5g/internal/metrics"
	"shield5g/internal/paka"
	"shield5g/internal/sbi"
	"shield5g/internal/simclock"
	"shield5g/internal/ue"
)

// Config controls experiment scale and reproducibility.
type Config struct {
	// Seed drives all virtual-time jitter.
	Seed uint64
	// Iterations is the per-configuration sample count; the paper uses
	// 500. Zero selects 500.
	Iterations int
	// MaxUEs bounds the Table III registration sweep; the paper
	// registers 1..10 UEs and prints up to 3 for brevity. Zero selects 3.
	MaxUEs int
}

func (c Config) iterations() int {
	if c.Iterations <= 0 {
		return 500
	}
	return c.Iterations
}

// rig deploys one P-AKA module in isolation and drives requests through
// it, reproducing the paper's module-level measurement setup.
type rig struct {
	kind    paka.ModuleKind
	env     *costmodel.Env
	module  *paka.Module
	client  *sbi.Client
	av      *paka.UDMGenerateAVResponse
	mykey   []byte
	reqSupi string
}

// rigOptions tunes the module deployment.
type rigOptions struct {
	isolation      paka.Isolation
	enclaveSize    uint64
	maxThreads     int
	disablePreheat bool
	exitless       bool
	userLevelTCP   bool
}

var rigKey = []byte{0x46, 0x5b, 0x5c, 0xe8, 0xb1, 0x99, 0xb4, 0x9f, 0xaa, 0x5f, 0x0a, 0x2e, 0xe2, 0x38, 0xa6, 0xbc}
var rigOPc = []byte{0xcd, 0x63, 0xcb, 0x71, 0x95, 0x4a, 0x9f, 0x4e, 0x48, 0xa5, 0x99, 0x4e, 0x37, 0xa0, 0x2b, 0xaf}

const (
	rigSUPI = "imsi-001010000000001"
	rigSNN  = "5G:mnc001.mcc001.3gppnetwork.org"
)

// newRig deploys the module on a fresh platform/environment.
func newRig(ctx context.Context, kind paka.ModuleKind, seed uint64, opts rigOptions) (*rig, error) {
	env := costmodel.NewEnv(nil, seed, nil)
	registry := sbi.NewRegistry()
	var platform *sgx.Platform
	if opts.isolation == paka.SGX {
		var err error
		platform, err = sgx.NewPlatform(sgx.PlatformConfig{Seed: seed})
		if err != nil {
			return nil, err
		}
	}
	m, err := paka.New(ctx, paka.Config{
		Kind:             kind,
		Isolation:        opts.isolation,
		Env:              env,
		Platform:         platform,
		Registry:         registry,
		EnclaveSizeBytes: opts.enclaveSize,
		MaxThreads:       opts.maxThreads,
		DisablePreheat:   opts.disablePreheat,
		Exitless:         opts.exitless,
		UserLevelTCP:     opts.userLevelTCP,
	})
	if err != nil {
		return nil, err
	}
	r := &rig{
		kind:    kind,
		env:     env,
		module:  m,
		client:  sbi.NewClient("parent-vnf", env, registry),
		reqSupi: rigSUPI,
		mykey:   rigKey,
	}
	if kind == paka.EUDM {
		if err := m.ProvisionSubscriber(ctx, rigSUPI, rigKey); err != nil {
			m.Stop()
			return nil, err
		}
	}
	if kind != paka.EUDM {
		av, err := paka.GenerateAV(rigKey, rigAVRequest())
		if err != nil {
			m.Stop()
			return nil, err
		}
		r.av = av
	}
	return r, nil
}

func rigAVRequest() *paka.UDMGenerateAVRequest {
	return &paka.UDMGenerateAVRequest{
		SUPI:  rigSUPI,
		OPc:   rigOPc,
		RAND:  []byte{0x23, 0x55, 0x3c, 0xbe, 0x96, 0x37, 0xa8, 0x9d, 0x21, 0x8a, 0xe6, 0x4d, 0xae, 0x47, 0xbf, 0x35},
		SQN:   []byte{0, 0, 0, 0, 0, 0x21},
		AMFID: []byte{0x80, 0x00},
		SNN:   rigSNN,
	}
}

// invoke drives one request and returns the VNF-side response time.
func (r *rig) invoke(ctx context.Context) (time.Duration, error) {
	var acct simclock.Account
	ctx = simclock.WithAccount(ctx, &acct)
	start := acct.Total()
	var err error
	switch r.kind {
	case paka.EUDM:
		err = r.client.Post(ctx, r.kind.ServiceName(), paka.PathUDMGenerateAV, rigAVRequest(), &paka.UDMGenerateAVResponse{})
	case paka.EAUSF:
		err = r.client.Post(ctx, r.kind.ServiceName(), paka.PathAUSFDeriveSE, &paka.AUSFDeriveSERequest{
			RAND: r.av.RAND, XRESStar: r.av.XRESStar, KAUSF: r.av.KAUSF, SNN: rigSNN,
		}, &paka.AUSFDeriveSEResponse{})
	case paka.EAMF:
		err = r.client.Post(ctx, r.kind.ServiceName(), paka.PathAMFDeriveKAMF, &paka.AMFDeriveKAMFRequest{
			KSEAF: make([]byte, 32), SUPI: rigSUPI, ABBA: []byte{0, 0},
		}, &paka.AMFDeriveKAMFResponse{})
	}
	if err != nil {
		return 0, err
	}
	return r.env.Model.Duration(acct.Total() - start), nil
}

// run measures n warm requests, returning the initial (cold) response time
// separately plus the module-side recorders.
type rigRun struct {
	initial    time.Duration
	responses  *metrics.Recorder
	functional metrics.Summary
	total      metrics.Summary
}

func (r *rig) run(ctx context.Context, n int) (*rigRun, error) {
	initial, err := r.invoke(ctx)
	if err != nil {
		return nil, err
	}
	r.module.ResetRecorders()
	rec := &metrics.Recorder{}
	for i := 0; i < n; i++ {
		d, err := r.invoke(ctx)
		if err != nil {
			return nil, err
		}
		rec.Add(d)
	}
	return &rigRun{
		initial:    initial,
		responses:  rec,
		functional: r.module.FunctionalLatency().Summarize(),
		total:      r.module.TotalLatency().Summarize(),
	}, nil
}

func (r *rig) stop() { r.module.Stop() }

// sliceSubscriber provisions one subscriber+device pair on a slice.
func sliceSubscriber(ctx context.Context, s *deploy.Slice, msin string) (*ue.UE, error) {
	supi := suci.SUPI{MCC: "001", MNC: "01", MSIN: msin}
	opc, err := milenage.ComputeOPc(rigKey, make([]byte, 16))
	if err != nil {
		return nil, err
	}
	if err := s.ProvisionSubscriber(ctx, supi, rigKey, opc); err != nil {
		return nil, err
	}
	return ue.New(ue.Config{
		SUPI:                 supi,
		K:                    rigKey,
		OPc:                  opc,
		HomeNetworkPublicKey: s.HomeNetworkKey.PublicKey(),
		HomeNetworkKeyID:     s.HomeNetworkKey.ID,
		Env:                  s.Env,
	})
}

// fprintf writes a rendered line, ignoring write errors (render targets
// are in-memory or stdout).
func fprintf(w io.Writer, format string, args ...any) {
	_, _ = fmt.Fprintf(w, format, args...)
}
