// Package lockorder is a shieldlint fixture for the lock-order
// analyzer: mutex acquisitions must follow one global partial order.
// The cases cover recursive self-deadlock, two-lock inconsistent
// nesting, a three-lock cycle, an order violation hidden one call
// level down, and the deliberate suppressions — same lock identity on
// two different shard instances, and goroutines starting with a fresh
// lock stack.
package lockorder

import "sync"

// --- recursive acquisition: guaranteed self-deadlock ---

var recMu sync.Mutex

func recursive() {
	recMu.Lock()
	recMu.Lock() // want "recursive lock"
	recMu.Unlock()
	recMu.Unlock()
}

var rw sync.RWMutex

// recursiveRead re-read-locks: prohibited by the sync docs because a
// blocked writer between the two RLocks deadlocks the reader.
func recursiveRead() {
	rw.RLock()
	rw.RLock() // want "recursive lock"
	rw.RUnlock()
	rw.RUnlock()
}

type shard struct {
	mu   sync.Mutex
	data map[string]int
}

func (s *shard) reput(k string, v int) {
	s.mu.Lock()
	s.mu.Lock() // want "recursive lock"
	s.data[k] = v
	s.mu.Unlock()
	s.mu.Unlock()
}

// rebalance locks two shards of the same striped structure: the same
// lock identity on two receivers is the sharded-nesting pattern the
// analyzer deliberately admits.
func rebalance(a, b *shard) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock()
	defer b.mu.Unlock()
	a.data["x"], b.data["x"] = b.data["x"], a.data["x"]
}

type table struct {
	sync.Mutex
	m map[string]int
}

// redo locks through an embedded mutex: identity is the embedding type.
func (t *table) redo(k string, v int) {
	t.Lock()
	t.Lock() // want "recursive lock"
	t.m[k] = v
	t.Unlock()
	t.Unlock()
}

// --- inconsistent nesting: two locks, opposite orders ---

var muA, muB sync.Mutex

func abOrder() {
	muA.Lock()
	defer muA.Unlock()
	muB.Lock() // want "inconsistent lock nesting"
	muB.Unlock()
}

func baOrder() {
	muB.Lock()
	defer muB.Unlock()
	muA.Lock() // want "inconsistent lock nesting"
	muA.Unlock()
}

// --- lock-order cycle across three locks ---

var muX, muY, muZ sync.Mutex

func xThenY() {
	muX.Lock()
	defer muX.Unlock()
	muY.Lock() // want "cycle of 3 locks"
	muY.Unlock()
}

func yThenZ() {
	muY.Lock()
	defer muY.Unlock()
	muZ.Lock() // want "cycle of 3 locks"
	muZ.Unlock()
}

func zThenX() {
	muZ.Lock()
	defer muZ.Unlock()
	muX.Lock() // want "cycle of 3 locks"
	muX.Unlock()
}

// --- one call level: the opposing order hides inside a callee ---

type registry struct{ mu sync.Mutex }
type journal struct{ mu sync.Mutex }

var reg registry
var jnl journal

func lockJournal() {
	jnl.mu.Lock()
	defer jnl.mu.Unlock()
}

func regThenJournal() {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	lockJournal() // want "inconsistent lock nesting.*through the call to lockJournal"
}

func journalThenReg() {
	jnl.mu.Lock()
	defer jnl.mu.Unlock()
	reg.mu.Lock() // want "inconsistent lock nesting"
	reg.mu.Unlock()
}

// --- clean: one consistent order, however it is released ---

var muOuter, muInner sync.Mutex

func outerInner1() {
	muOuter.Lock()
	muInner.Lock()
	muInner.Unlock()
	muOuter.Unlock()
}

func outerInner2() {
	muOuter.Lock()
	defer muOuter.Unlock()
	muInner.Lock()
	defer muInner.Unlock()
}

// readHeld nests under a read lock: RWMutex participates in the order.
func readHeld() {
	rw.RLock()
	defer rw.RUnlock()
	muInner.Lock()
	muInner.Unlock()
}

// --- clean: goroutines start with an empty lock stack ---

var muG1, muG2 sync.Mutex

func lockG2() {
	muG2.Lock()
	muG2.Unlock()
}

func spawnClean() {
	muG1.Lock()
	go lockG2()
	muG1.Unlock()
}

func g2ThenG1() {
	muG2.Lock()
	defer muG2.Unlock()
	muG1.Lock()
	muG1.Unlock()
}

// --- clean: distinct stripes of one lock array ---

type striped struct {
	stripes []sync.Mutex
	vals    []int
}

func (s *striped) move(i, j int) {
	s.stripes[i].Lock()
	defer s.stripes[i].Unlock()
	s.stripes[j].Lock()
	defer s.stripes[j].Unlock()
	s.vals[i], s.vals[j] = s.vals[j], s.vals[i]
}

// --- suppression: the annotation keeps the finding as suppressed ---

var muS1, muS2 sync.Mutex

func sOrder1() {
	muS1.Lock()
	defer muS1.Unlock()
	//shieldlint:ignore lockorder fixture exercises annotation suppression
	muS2.Lock() // want:suppressed "inconsistent lock nesting"
	muS2.Unlock()
}

func sOrder2() {
	muS2.Lock()
	defer muS2.Unlock()
	muS1.Lock() // want "inconsistent lock nesting"
	muS1.Unlock()
}
