package experiments

import (
	"context"
	"io"
	"time"

	"shield5g/internal/costmodel"
	"shield5g/internal/hmee/sgx"
	"shield5g/internal/metrics"
	"shield5g/internal/paka"
	"shield5g/internal/sbi"
)

// Fig7Result holds enclave load time distributions per P-AKA module.
type Fig7Result struct {
	// Load maps module name to its load-time summary (the paper plots
	// minutes; Summary durations convert with Minutes()).
	Load map[paka.ModuleKind]metrics.Summary
}

// Fig7 measures enclave load time for the three P-AKA modules: each
// iteration builds the module's shielded container on a fresh platform
// and records the time until it is operational (GSC trusted-file
// measurement + EADD/EEXTEND + preheat pre-faulting dominate).
func Fig7(ctx context.Context, cfg Config) (*Fig7Result, error) {
	// Full 500-iteration builds are unnecessary for a deterministic
	// model with seeded jitter; cap at 100 per module by default scale.
	n := cfg.iterations()
	if n > 100 {
		n = 100
	}
	result := &Fig7Result{Load: make(map[paka.ModuleKind]metrics.Summary)}
	for _, kind := range paka.Kinds() {
		rec := &metrics.Recorder{}
		for i := 0; i < n; i++ {
			seed := cfg.Seed + uint64(kind)*1000 + uint64(i)
			env := costmodel.NewEnv(nil, seed, nil)
			platform, err := sgx.NewPlatform(sgx.PlatformConfig{Seed: seed})
			if err != nil {
				return nil, err
			}
			m, err := paka.New(ctx, paka.Config{
				Kind:      kind,
				Isolation: paka.SGX,
				Env:       env,
				Platform:  platform,
				Registry:  sbi.NewRegistry(),
			})
			if err != nil {
				return nil, err
			}
			rec.Add(m.LoadDuration())
			m.Stop()
		}
		result.Load[kind] = rec.Summarize()
	}
	return result, nil
}

// Render prints the paper-style series (enclave load time in minutes).
func (r *Fig7Result) Render(w io.Writer) {
	fprintf(w, "Figure 7: Enclave load time for the P-AKA modules\n")
	fprintf(w, "%-8s %10s %10s %10s %10s %10s\n", "module", "q1(min)", "med(min)", "q3(min)", "min", "max")
	for _, kind := range paka.Kinds() {
		s := r.Load[kind]
		fprintf(w, "%-8s %10.4f %10.4f %10.4f %10.4f %10.4f\n",
			kind, minutes(s.Q1), minutes(s.Median), minutes(s.Q3), minutes(s.Min), minutes(s.Max))
	}
}

func minutes(d time.Duration) float64 { return d.Minutes() }
