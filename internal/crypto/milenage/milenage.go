// Package milenage implements the MILENAGE algorithm set (3GPP TS 35.205 /
// TS 35.206): the authentication and key-generation functions f1, f1*, f2,
// f3, f4, f5 and f5* built around AES-128, plus OPc derivation.
//
// MILENAGE is the algorithm the paper's eUDM P-AKA module executes inside
// the SGX enclave to generate the Home Environment authentication vector
// (RAND, AUTN, XRES*, K_AUSF inputs CK/IK), and the algorithm the USIM runs
// on the UE side to verify the network and compute RES*.
package milenage

import (
	"crypto/aes"
	"crypto/cipher"
	"fmt"
	"sync"
)

// Algorithm parameter sizes in bytes.
const (
	KeyLen  = 16 // subscriber key K
	OPLen   = 16 // operator variant algorithm configuration field
	RandLen = 16 // authentication challenge RAND
	SQNLen  = 6  // sequence number
	AMFLen  = 2  // authentication management field
	MACLen  = 8  // MAC-A / MAC-S
	ResLen  = 8  // RES / XRES
	CKLen   = 16 // cipher key
	IKLen   = 16 // integrity key
	AKLen   = 6  // anonymity key
)

// Rotation and addition constants from TS 35.206 §4.1 (bit amounts; all are
// whole bytes so rotation is implemented byte-wise).
var (
	rotations = [5]int{8, 0, 4, 8, 12} // r1..r5 in bytes (64, 0, 32, 64, 96 bits)
	constants = [5]byte{0, 1, 2, 4, 8} // low byte of c1..c5; other bits zero
)

// Cipher evaluates the MILENAGE functions for one subscriber (K, OPc) pair.
// It is safe for concurrent use after construction.
type Cipher struct {
	block cipher.Block
	opc   [OPLen]byte
}

// New returns a Cipher for subscriber key k and the pre-computed OPc.
func New(k, opc []byte) (*Cipher, error) {
	if len(k) != KeyLen {
		return nil, fmt.Errorf("milenage: key length %d, want %d", len(k), KeyLen)
	}
	if len(opc) != OPLen {
		return nil, fmt.Errorf("milenage: OPc length %d, want %d", len(opc), OPLen)
	}
	block, err := aes.NewCipher(k)
	if err != nil {
		return nil, fmt.Errorf("milenage: new AES cipher: %w", err)
	}
	c := &Cipher{block: block}
	copy(c.opc[:], opc)
	return c, nil
}

// NewWithOP returns a Cipher for subscriber key k and operator key OP,
// deriving OPc internally.
func NewWithOP(k, op []byte) (*Cipher, error) {
	opc, err := ComputeOPc(k, op)
	if err != nil {
		return nil, err
	}
	return New(k, opc)
}

// ComputeOPc derives OPc = E_K(OP) XOR OP (TS 35.206 §4.1).
func ComputeOPc(k, op []byte) ([]byte, error) {
	if len(k) != KeyLen {
		return nil, fmt.Errorf("milenage: key length %d, want %d", len(k), KeyLen)
	}
	if len(op) != OPLen {
		return nil, fmt.Errorf("milenage: OP length %d, want %d", len(op), OPLen)
	}
	block, err := aes.NewCipher(k)
	if err != nil {
		return nil, fmt.Errorf("milenage: new AES cipher: %w", err)
	}
	opc := make([]byte, OPLen)
	block.Encrypt(opc, op)
	xorInto(opc, op)
	return opc, nil
}

// OPc returns a copy of the cipher's OPc value.
func (c *Cipher) OPc() []byte {
	out := make([]byte, OPLen)
	copy(out, c.opc[:])
	return out
}

// scratch holds the intermediate AES blocks of one MILENAGE evaluation.
// The blocks live in a pooled struct rather than on the stack because
// cipher.Block's interface methods force their arguments to escape; with
// stack arrays every f1/f2345 call would heap-allocate its temporaries.
type scratch struct {
	in   [16]byte // E_K input being assembled
	temp [16]byte // TEMP = E_K(RAND XOR OPc)
	rot  [16]byte // rotated block
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// putScratch scrubs the intermediate blocks before recycling: TEMP and
// the rotation inputs are keyed intermediates (enough to reconstruct
// OUT-block inputs), and pooled memory must not retain them between
// evaluations — the same discipline hashpool.PutHMAC applies.
func putScratch(s *scratch) {
	*s = scratch{}
	scratchPool.Put(s)
}

// F1 computes the network authentication code MAC-A (TS 35.206 §4.1).
func (c *Cipher) F1(rand, sqn, amf []byte) ([]byte, error) {
	out1, err := c.f1Block(rand, sqn, amf)
	if err != nil {
		return nil, err
	}
	return out1[:MACLen], nil
}

// F1Star computes the resynchronisation authentication code MAC-S.
func (c *Cipher) F1Star(rand, sqn, amf []byte) ([]byte, error) {
	out1, err := c.f1Block(rand, sqn, amf)
	if err != nil {
		return nil, err
	}
	return out1[MACLen:], nil
}

//shieldlint:hotpath
func (c *Cipher) f1Block(rand, sqn, amf []byte) ([]byte, error) {
	//shieldlint:ignore hotalloc single caller-owned OUT1 per UE-side verification; the enclave mint path uses F1Into with pooled scratch
	out := make([]byte, 16)
	if err := c.F1Into(out, rand, sqn, amf); err != nil {
		return nil, err
	}
	return out, nil
}

// F1Into computes the full OUT1 block — MAC-A || MAC-S — into dst,
// which must hold exactly 16 bytes; MAC-A is dst[:MACLen], MAC-S is
// dst[MACLen:]. This is the allocation-free variant of F1/F1Star for
// callers holding pooled or batch-shared scratch (the eUDM AV mint).
//
//shieldlint:hotpath
func (c *Cipher) F1Into(dst, rand, sqn, amf []byte) error {
	if len(dst) != 16 {
		return fmt.Errorf("milenage: OUT1 backing %d bytes, want 16", len(dst))
	}
	if err := checkLens(rand, sqn, amf); err != nil {
		return err
	}
	s := scratchPool.Get().(*scratch)
	c.tempInto(s, rand)

	// IN1 = SQN || AMF || SQN || AMF.
	copy(s.in[0:6], sqn)
	copy(s.in[6:8], amf)
	copy(s.in[8:14], sqn)
	copy(s.in[14:16], amf)

	// OUT1 = E_K(TEMP XOR rot(IN1 XOR OPc, r1) XOR c1) XOR OPc.
	xorInto(s.in[:], c.opc[:])
	rotateInto(&s.rot, &s.in, rotations[0])
	s.rot[15] ^= constants[0]
	xorInto(s.rot[:], s.temp[:])
	c.block.Encrypt(dst, s.rot[:])
	xorInto(dst, c.opc[:])
	putScratch(s)
	return nil
}

// F2345 computes RES, CK, IK and AK from RAND in a single pass, matching
// the derivations the UDM performs when building an authentication vector.
// The four results share one freshly allocated backing array (their byte
// ranges are disjoint); callers own them and may read them independently.
//
//shieldlint:hotpath
func (c *Cipher) F2345(rand []byte) (res, ck, ik, ak []byte, err error) {
	// One backing array for OUT2 || OUT3 || OUT4.
	//shieldlint:ignore hotalloc single caller-owned backing for all three UE-side outputs; the enclave mint path uses F2345Into with pooled scratch
	out := make([]byte, 48)
	return c.F2345Into(out, rand)
}

// F2345Into is the allocation-free variant of F2345: out must hold
// exactly 48 bytes and receives OUT2 || OUT3 || OUT4; the returned
// res/ck/ik/ak slices alias disjoint ranges of out. Callers recycling
// out through a pool must scrub it before returning it — CK, IK and AK
// are key material.
//
//shieldlint:hotpath
func (c *Cipher) F2345Into(out, rand []byte) (res, ck, ik, ak []byte, err error) {
	if len(out) != 48 {
		return nil, nil, nil, nil, fmt.Errorf("milenage: OUT2..4 backing %d bytes, want 48", len(out))
	}
	if len(rand) != RandLen {
		return nil, nil, nil, nil, fmt.Errorf("milenage: RAND length %d, want %d", len(rand), RandLen)
	}
	s := scratchPool.Get().(*scratch)
	c.tempInto(s, rand)
	c.outBlockInto(s, 1, out[0:16])
	c.outBlockInto(s, 2, out[16:32])
	c.outBlockInto(s, 3, out[32:48])
	putScratch(s)

	res = out[8:16:16] // OUT2[8:16]
	ak = out[0:AKLen:AKLen]
	ck = out[16:32:32]
	ik = out[32:48:48]
	return res, ck, ik, ak, nil
}

// F5Star computes the resynchronisation anonymity key AK*.
func (c *Cipher) F5Star(rand []byte) ([]byte, error) {
	if len(rand) != RandLen {
		return nil, fmt.Errorf("milenage: RAND length %d, want %d", len(rand), RandLen)
	}
	s := scratchPool.Get().(*scratch)
	c.tempInto(s, rand)
	out := make([]byte, 16)
	c.outBlockInto(s, 4, out)
	putScratch(s)
	return out[0:AKLen], nil
}

// tempInto computes TEMP = E_K(RAND XOR OPc) into s.temp.
func (c *Cipher) tempInto(s *scratch, rand []byte) {
	copy(s.in[:], rand)
	xorInto(s.in[:], c.opc[:])
	c.block.Encrypt(s.temp[:], s.in[:])
}

// outBlockInto computes OUT_n = E_K(rot(TEMP XOR OPc, r_n) XOR c_n) XOR OPc
// for n in {2..5}, indexed 1..4 into the constant tables, writing the
// 16-byte result into dst.
func (c *Cipher) outBlockInto(s *scratch, idx int, dst []byte) {
	copy(s.in[:], s.temp[:])
	xorInto(s.in[:], c.opc[:])
	rotateInto(&s.rot, &s.in, rotations[idx])
	s.rot[15] ^= constants[idx]
	c.block.Encrypt(dst, s.rot[:])
	xorInto(dst, c.opc[:])
}

// rotateInto writes src cyclically rotated left by n bytes into dst.
func rotateInto(dst, src *[16]byte, n int) {
	for i := range dst {
		dst[i] = src[(i+n)%16]
	}
}

// xorInto xors src into dst in place.
func xorInto(dst, src []byte) {
	for i := range dst {
		dst[i] ^= src[i]
	}
}

func checkLens(rand, sqn, amf []byte) error {
	if len(rand) != RandLen {
		return fmt.Errorf("milenage: RAND length %d, want %d", len(rand), RandLen)
	}
	if len(sqn) != SQNLen {
		return fmt.Errorf("milenage: SQN length %d, want %d", len(sqn), SQNLen)
	}
	if len(amf) != AMFLen {
		return fmt.Errorf("milenage: AMF length %d, want %d", len(amf), AMFLen)
	}
	return nil
}
