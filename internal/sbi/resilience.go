package sbi

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"shield5g/internal/costmodel"
	"shield5g/internal/simclock"
)

// This file implements the SBI resilience layer of the robustness work:
// per-request virtual-time deadlines, a retry policy with exponential
// backoff and deterministic jitter that honours Retry-After/ProblemDetails
// cause semantics (TS 29.500 §6.4, §6.10), and a per-service circuit
// breaker with half-open probing. All waiting is charged to virtual time
// through the shared costmodel.Env, so runs stay seed-deterministic and
// wall-clock free.

// Retryable reports whether an SBI error may be retried. Per TS 29.500,
// congestion (429), transient unavailability (503), gateway timeouts
// (504) and internal server errors (500 SYSTEM_FAILURE) are transient;
// every other 4xx is a permanent protocol- or subscription-level failure
// that a retry cannot fix. Non-ProblemDetails errors (transport plumbing)
// are treated as transient.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	pd, ok := AsProblem(err)
	if !ok {
		return true
	}
	switch pd.Status {
	case 429, 500, 503, 504:
		return true
	default:
		return false
	}
}

// RetryPolicy shapes the exponential backoff between attempts. Durations
// are virtual time.
type RetryPolicy struct {
	// MaxAttempts bounds total tries, including the first (min 1).
	MaxAttempts int
	// InitialBackoff is the wait before the second attempt.
	InitialBackoff time.Duration
	// MaxBackoff caps the exponential growth.
	MaxBackoff time.Duration
	// Multiplier grows the backoff per attempt (min 1).
	Multiplier float64
	// JitterFrac spreads each wait uniformly in [1-f, 1+f], drawn from
	// the request's deterministic jitter stream.
	JitterFrac float64
}

// DefaultRetryPolicy mirrors the 3GPP SBI client guidance: a handful of
// attempts with doubling backoff, jittered to avoid retry synchronisation.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:    4,
		InitialBackoff: 5 * time.Millisecond,
		MaxBackoff:     500 * time.Millisecond,
		Multiplier:     2,
		JitterFrac:     0.2,
	}
}

// BreakerConfig tunes the per-service circuit breaker.
type BreakerConfig struct {
	// FailureThreshold consecutive transient failures open the circuit.
	FailureThreshold int
	// OpenTimeout is the virtual cooldown before half-open probing.
	OpenTimeout time.Duration
	// HalfOpenProbes is how many concurrent probes half-open admits and
	// how many successes close the circuit again.
	HalfOpenProbes int
}

// DefaultBreakerConfig trips after a burst of consecutive failures and
// probes again after a short virtual cooldown.
func DefaultBreakerConfig() BreakerConfig {
	return BreakerConfig{
		FailureThreshold: 8,
		OpenTimeout:      time.Second,
		HalfOpenProbes:   2,
	}
}

// BreakerState is the circuit breaker state machine position.
type BreakerState int

// The classic three breaker states.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Breaker is a circuit breaker on the virtual clock: closed passes all
// requests; FailureThreshold consecutive transient failures open it; after
// OpenTimeout of virtual time it admits HalfOpenProbes probes, which close
// it on success or re-open it on failure.
type Breaker struct {
	cfg BreakerConfig

	mu          sync.Mutex
	state       BreakerState
	consecFails int
	openedAt    time.Duration
	inFlight    int
	successes   int

	// Transition and probe counters (queryable via Stats): how often the
	// circuit opened, moved to half-open, closed again, how many half-open
	// probes were admitted, and how many requests the breaker rejected.
	opens     uint64
	halfOpens uint64
	closes    uint64
	probes    uint64
	rejected  uint64
}

// BreakerStats is a queryable snapshot of one breaker's state machine.
type BreakerStats struct {
	State     BreakerState
	Opens     uint64
	HalfOpens uint64
	Closes    uint64
	Probes    uint64
	Rejected  uint64
}

// Stats snapshots the breaker's transition counters.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStats{
		State:     b.state,
		Opens:     b.opens,
		HalfOpens: b.halfOpens,
		Closes:    b.closes,
		Probes:    b.probes,
		Rejected:  b.rejected,
	}
}

// merge accumulates another breaker's counters into s (state keeps the
// most-degraded of the two, open > half-open > closed).
func (s *BreakerStats) merge(o BreakerStats) {
	if o.State > s.State {
		s.State = o.State
	}
	s.Opens += o.Opens
	s.HalfOpens += o.HalfOpens
	s.Closes += o.Closes
	s.Probes += o.Probes
	s.Rejected += o.Rejected
}

// NewBreaker builds a closed breaker; zero config fields take defaults.
func NewBreaker(cfg BreakerConfig) *Breaker {
	def := DefaultBreakerConfig()
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = def.FailureThreshold
	}
	if cfg.OpenTimeout <= 0 {
		cfg.OpenTimeout = def.OpenTimeout
	}
	if cfg.HalfOpenProbes <= 0 {
		cfg.HalfOpenProbes = def.HalfOpenProbes
	}
	return &Breaker{cfg: cfg}
}

// State reports the current state (open lazily transitions to half-open
// only on the next Allow, matching the virtual-clock design).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Allow asks to admit a request at virtual time now. When it returns
// false, retryAfter is the remaining cooldown (zero if half-open is merely
// saturated with probes). Every admitted request must be followed by
// exactly one OnSuccess or OnFailure.
func (b *Breaker) Allow(now time.Duration) (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen {
		if now-b.openedAt < b.cfg.OpenTimeout {
			b.rejected++
			return false, b.cfg.OpenTimeout - (now - b.openedAt)
		}
		b.state = BreakerHalfOpen
		b.halfOpens++
		b.inFlight = 0
		b.successes = 0
	}
	if b.state == BreakerHalfOpen {
		if b.inFlight >= b.cfg.HalfOpenProbes {
			b.rejected++
			return false, 0
		}
		b.inFlight++
		b.probes++
	}
	return true, 0
}

// OnSuccess records a successful admitted request.
func (b *Breaker) OnSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.consecFails = 0
	case BreakerHalfOpen:
		b.inFlight--
		b.successes++
		if b.successes >= b.cfg.HalfOpenProbes {
			b.state = BreakerClosed
			b.closes++
			b.consecFails = 0
		}
	}
}

// OnFailure records a transient failure of an admitted request at virtual
// time now.
func (b *Breaker) OnFailure(now time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.consecFails++
		if b.consecFails >= b.cfg.FailureThreshold {
			b.state = BreakerOpen
			b.opens++
			b.openedAt = now
		}
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.opens++
		b.openedAt = now
	}
}

// ResilienceConfig configures the resilient invoker wrapper.
type ResilienceConfig struct {
	Retry   RetryPolicy
	Breaker BreakerConfig
	// Deadline is the per-request virtual-time budget across all
	// attempts, measured on the request's Account. Zero disables it.
	Deadline time.Duration
	// DisableBreaker bypasses the circuit breaker (retries still apply).
	DisableBreaker bool
	// Peers supplies the freshest per-peer overload adverts (normally the
	// base *Client); with Throttle set, non-emergency attempts are
	// deferred with probability Reduction/100 — the deterministic draw
	// comes from the request's jitter stream, the deferral is charged to
	// virtual time through the normal backoff path, and the peer's
	// Retry-After floor applies. Emergency-class requests bypass
	// throttling entirely.
	Peers    OCISource
	Throttle bool
}

// DefaultResilienceConfig is the slice-wide default used by deploy when
// resilience is enabled.
func DefaultResilienceConfig() ResilienceConfig {
	return ResilienceConfig{
		Retry:    DefaultRetryPolicy(),
		Breaker:  DefaultBreakerConfig(),
		Deadline: 10 * time.Second,
	}
}

// ResilientClient wraps an Invoker with deadlines, retries and per-service
// circuit breakers. It is safe for concurrent use; breakers are shared
// across all requests of the wrapping client.
type ResilientClient struct {
	inner Invoker
	env   *costmodel.Env
	cfg   ResilienceConfig

	mu       sync.Mutex
	breakers map[string]*Breaker

	// Queryable retry-layer counters (see ResilienceStats).
	attempts          atomic.Uint64
	retries           atomic.Uint64
	throttled         atomic.Uint64
	retryAfterHonored atomic.Uint64
	deadlineHits      atomic.Uint64
}

// ResilienceStats aggregates the retry-layer and breaker counters of one
// or more resilient clients — the queryable view of behaviour that used
// to be invisible in experiment output.
type ResilienceStats struct {
	// Attempts counts dispatched attempts (including breaker-rejected
	// ones); Retries counts attempts beyond each request's first.
	Attempts uint64
	Retries  uint64
	// Throttled counts attempts deferred client-side in response to a
	// peer's advertised overload reduction.
	Throttled uint64
	// RetryAfterHonored counts backoff waits floored by a server's
	// Retry-After; DeadlineHits counts requests that exhausted their
	// virtual deadline budget.
	RetryAfterHonored uint64
	DeadlineHits      uint64
	// Breaker merges every per-service breaker's transition counters.
	Breaker BreakerStats
}

// merge accumulates another client's stats into s.
func (s *ResilienceStats) Merge(o ResilienceStats) {
	s.Attempts += o.Attempts
	s.Retries += o.Retries
	s.Throttled += o.Throttled
	s.RetryAfterHonored += o.RetryAfterHonored
	s.DeadlineHits += o.DeadlineHits
	s.Breaker.merge(o.Breaker)
}

// Stats snapshots the client's retry counters plus the merged counters of
// all its per-service breakers.
func (r *ResilientClient) Stats() ResilienceStats {
	stats := ResilienceStats{
		Attempts:          r.attempts.Load(),
		Retries:           r.retries.Load(),
		Throttled:         r.throttled.Load(),
		RetryAfterHonored: r.retryAfterHonored.Load(),
		DeadlineHits:      r.deadlineHits.Load(),
	}
	r.mu.Lock()
	for _, b := range r.breakers {
		stats.Breaker.merge(b.Stats())
	}
	r.mu.Unlock()
	return stats
}

// NewResilient wraps inner; zero retry fields take defaults.
func NewResilient(inner Invoker, env *costmodel.Env, cfg ResilienceConfig) *ResilientClient {
	def := DefaultRetryPolicy()
	if cfg.Retry.MaxAttempts <= 0 {
		cfg.Retry.MaxAttempts = def.MaxAttempts
	}
	if cfg.Retry.InitialBackoff <= 0 {
		cfg.Retry.InitialBackoff = def.InitialBackoff
	}
	if cfg.Retry.MaxBackoff <= 0 {
		cfg.Retry.MaxBackoff = def.MaxBackoff
	}
	if cfg.Retry.Multiplier < 1 {
		cfg.Retry.Multiplier = def.Multiplier
	}
	return &ResilientClient{
		inner:    inner,
		env:      env,
		cfg:      cfg,
		breakers: make(map[string]*Breaker),
	}
}

// BreakerFor returns the (lazily created) breaker guarding service.
func (r *ResilientClient) BreakerFor(service string) *Breaker {
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.breakers[service]
	if !ok {
		b = NewBreaker(r.cfg.Breaker)
		r.breakers[service] = b
	}
	return b
}

// Post implements Invoker: it drives attempts against the inner transport
// until success, a permanent error, retry exhaustion, or the virtual
// deadline. Backoff waits are charged to the request's account (and the
// shared clock), so retrying under faults shows up in setup-time figures.
func (r *ResilientClient) Post(ctx context.Context, service, path string, req, resp any) error {
	freq := r.env.Clock.FrequencyHz()
	acct := simclock.AccountFrom(ctx)
	start := acct.Total()
	budget := simclock.FromDuration(r.cfg.Deadline, freq)

	// Emergency-class requests never gate on the shared breaker: under a
	// storm, non-emergency failures would otherwise open the circuit and
	// take emergency traffic down with them.
	var br *Breaker
	if !r.cfg.DisableBreaker && PriorityFrom(ctx) != PriorityEmergency {
		br = r.BreakerFor(service)
	}

	backoff := r.cfg.Retry.InitialBackoff
	var lastErr error
	for attempt := 1; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return Problem(504, "Gateway Timeout", CauseTimeout, "%s%s: %v", service, path, cerr)
		}
		if r.cfg.Deadline > 0 && acct.Total()-start >= budget {
			r.deadlineHits.Add(1)
			return Problem(504, "Gateway Timeout", CauseTimeout,
				"%s%s: virtual deadline %v exceeded after %d attempt(s)", service, path, r.cfg.Deadline, attempt-1)
		}
		r.attempts.Add(1)
		if attempt > 1 {
			r.retries.Add(1)
		}

		var retryAfter time.Duration
		admitted := true
		if r.cfg.Throttle && r.cfg.Peers != nil && PriorityFrom(ctx) != PriorityEmergency {
			if oci, ok := r.cfg.Peers.PeerOCI(service); ok && oci.Reduction > 0 &&
				r.env.JitterFor(ctx).Float64()*100 < float64(oci.Reduction) {
				// The peer asked for proportional shedding: defer this
				// attempt locally instead of dispatching it, and wait at
				// least the advertised Retry-After before trying again.
				admitted = false
				r.throttled.Add(1)
				lastErr = Problem(503, "Service Unavailable", CauseOverload,
					"%s%s: deferred locally, peer advertised %d%% reduction", service, path, oci.Reduction)
				retryAfter = oci.RetryAfter
			}
		}
		if admitted && br != nil {
			var cooldown time.Duration
			admitted, cooldown = br.Allow(r.env.Clock.Now())
			if !admitted {
				lastErr = Problem(503, "Service Unavailable", CauseCircuitOpen,
					"%s%s: circuit open", service, path)
				retryAfter = cooldown
			}
		}
		if admitted {
			lastErr = r.inner.Post(ctx, service, path, req, resp)
			if lastErr == nil {
				if br != nil {
					br.OnSuccess()
				}
				return nil
			}
			if !Retryable(lastErr) {
				// A definitive server answer: it does not trip the breaker
				// (the peer is alive) and must not be retried.
				if br != nil {
					br.OnSuccess()
				}
				return lastErr
			}
			if br != nil {
				br.OnFailure(r.env.Clock.Now())
			}
			if pd, ok := AsProblem(lastErr); ok && pd.RetryAfter > retryAfter {
				retryAfter = pd.RetryAfter
			}
		}

		if attempt >= r.cfg.Retry.MaxAttempts {
			return lastErr
		}
		wait := simclock.FromDuration(backoff, freq)
		wait = r.env.JitterFor(ctx).Scale(wait, r.cfg.Retry.JitterFrac)
		if floor := simclock.FromDuration(retryAfter, freq); wait < floor {
			wait = floor
			r.retryAfterHonored.Add(1)
		}
		if r.cfg.Deadline > 0 {
			if spent := acct.Total() - start; spent+wait > budget {
				r.deadlineHits.Add(1)
				// Waiting would blow the budget: charge the remainder and
				// report the deadline instead of sleeping past it. The
				// attempt itself may already have overshot the budget
				// (e.g. a crash-triggered enclave reload), so guard the
				// unsigned subtraction.
				if spent < budget {
					r.env.Charge(ctx, budget-spent)
				}
				return Problem(504, "Gateway Timeout", CauseTimeout,
					"%s%s: virtual deadline %v exceeded after %d attempt(s): %v",
					service, path, r.cfg.Deadline, attempt, lastErr)
			}
		}
		r.env.Charge(ctx, wait)
		backoff = time.Duration(float64(backoff) * r.cfg.Retry.Multiplier)
		if backoff > r.cfg.Retry.MaxBackoff {
			backoff = r.cfg.Retry.MaxBackoff
		}
	}
}

// Compile-time conformance.
var _ Invoker = (*ResilientClient)(nil)
