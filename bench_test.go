package shield5g_test

// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation. The simulated testbed measures in deterministic
// virtual time, so each benchmark reports the modelled quantity as a
// custom metric (virtual-us/op, virtual-s/load, ...) alongside the real
// wall-clock ns/op of executing the simulation itself. The Realtime
// benchmarks additionally convert modelled cycles into calibrated
// busy-wait (scale printed per bench) so that wall-clock ordering matches
// the modelled ordering.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"shield5g"
	"shield5g/internal/costmodel"
	"shield5g/internal/hmee/sgx"
	"shield5g/internal/paka"
	"shield5g/internal/sbi"
	"shield5g/internal/simclock"
)

// benchRig deploys one P-AKA module and a client for module-level benches.
type benchRig struct {
	env    *costmodel.Env
	module *paka.Module
	client *sbi.Client
	av     *paka.UDMGenerateAVResponse
}

var benchKey = []byte{0x46, 0x5b, 0x5c, 0xe8, 0xb1, 0x99, 0xb4, 0x9f, 0xaa, 0x5f, 0x0a, 0x2e, 0xe2, 0x38, 0xa6, 0xbc}
var benchOPc = []byte{0xcd, 0x63, 0xcb, 0x71, 0x95, 0x4a, 0x9f, 0x4e, 0x48, 0xa5, 0x99, 0x4e, 0x37, 0xa0, 0x2b, 0xaf}

const benchSUPI = "imsi-001010000000001"

func benchAVRequest() *paka.UDMGenerateAVRequest {
	return &paka.UDMGenerateAVRequest{
		SUPI:  benchSUPI,
		OPc:   benchOPc,
		RAND:  []byte{0x23, 0x55, 0x3c, 0xbe, 0x96, 0x37, 0xa8, 0x9d, 0x21, 0x8a, 0xe6, 0x4d, 0xae, 0x47, 0xbf, 0x35},
		SQN:   []byte{0, 0, 0, 0, 0, 0x21},
		AMFID: []byte{0x80, 0x00},
		SNN:   "5G:mnc001.mcc001.3gppnetwork.org",
	}
}

func newBenchRig(b *testing.B, kind paka.ModuleKind, iso paka.Isolation, realizer *costmodel.Realizer) *benchRig {
	b.Helper()
	env := costmodel.NewEnv(nil, 1, realizer)
	registry := sbi.NewRegistry()
	var platform *sgx.Platform
	if iso == paka.SGX {
		var err error
		platform, err = sgx.NewPlatform(sgx.PlatformConfig{Seed: 1, Realizer: realizer})
		if err != nil {
			b.Fatalf("NewPlatform: %v", err)
		}
	}
	m, err := paka.New(context.Background(), paka.Config{
		Kind: kind, Isolation: iso, Env: env, Platform: platform, Registry: registry,
	})
	if err != nil {
		b.Fatalf("paka.New: %v", err)
	}
	b.Cleanup(m.Stop)
	r := &benchRig{env: env, module: m, client: sbi.NewClient("bench-vnf", env, registry)}
	if kind == paka.EUDM {
		if err := m.ProvisionSubscriber(context.Background(), benchSUPI, benchKey); err != nil {
			b.Fatalf("provision: %v", err)
		}
	} else {
		av, err := paka.GenerateAV(benchKey, benchAVRequest())
		if err != nil {
			b.Fatalf("GenerateAV: %v", err)
		}
		r.av = av
	}
	return r
}

// invoke issues one module request and returns the charged cycles.
func (r *benchRig) invoke(b *testing.B, kind paka.ModuleKind) simclock.Cycles {
	b.Helper()
	var acct simclock.Account
	ctx := simclock.WithAccount(context.Background(), &acct)
	var err error
	switch kind {
	case paka.EUDM:
		err = r.client.Post(ctx, kind.ServiceName(), paka.PathUDMGenerateAV, benchAVRequest(), &paka.UDMGenerateAVResponse{})
	case paka.EAUSF:
		err = r.client.Post(ctx, kind.ServiceName(), paka.PathAUSFDeriveSE, &paka.AUSFDeriveSERequest{
			RAND: r.av.RAND, XRESStar: r.av.XRESStar, KAUSF: r.av.KAUSF, SNN: "5G:mnc001.mcc001.3gppnetwork.org",
		}, &paka.AUSFDeriveSEResponse{})
	case paka.EAMF:
		err = r.client.Post(ctx, kind.ServiceName(), paka.PathAMFDeriveKAMF, &paka.AMFDeriveKAMFRequest{
			KSEAF: make([]byte, 32), SUPI: benchSUPI, ABBA: []byte{0, 0},
		}, &paka.AMFDeriveKAMFResponse{})
	}
	if err != nil {
		b.Fatalf("invoke %s: %v", kind, err)
	}
	return acct.Total()
}

// BenchmarkFig7EnclaveLoad regenerates Fig. 7: the enclave build +
// preheat cost per P-AKA module. Reported metric: virtual seconds per
// load (paper: ~57-59 s).
func BenchmarkFig7EnclaveLoad(b *testing.B) {
	for _, kind := range paka.Kinds() {
		b.Run(kind.String(), func(b *testing.B) {
			env := costmodel.NewEnv(nil, 1, nil)
			var totalLoad float64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				platform, err := sgx.NewPlatform(sgx.PlatformConfig{Seed: uint64(i)})
				if err != nil {
					b.Fatalf("NewPlatform: %v", err)
				}
				registry := sbi.NewRegistry()
				m, err := paka.New(context.Background(), paka.Config{
					Kind: kind, Isolation: paka.SGX, Env: env, Platform: platform, Registry: registry,
				})
				if err != nil {
					b.Fatalf("paka.New: %v", err)
				}
				totalLoad += m.LoadDuration().Seconds()
				m.Stop()
			}
			b.ReportMetric(totalLoad/float64(b.N), "virtual-s/load")
		})
	}
}

// BenchmarkFig8ThreadsEPC regenerates Fig. 8: the eUDM module under the
// paper's thread/EPC sweep. Reported metric: virtual µs of total latency
// per request.
func BenchmarkFig8ThreadsEPC(b *testing.B) {
	configs := []struct {
		name    string
		iso     paka.Isolation
		threads int
		size    uint64
	}{
		{"threads4-epc512M", paka.SGX, 4, 512 << 20},
		{"threads10-epc512M", paka.SGX, 10, 512 << 20},
		{"threads50-epc8G", paka.SGX, 50, 8 << 30},
		{"non-sgx", paka.Container, 0, 0},
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			env := costmodel.NewEnv(nil, 1, nil)
			registry := sbi.NewRegistry()
			var platform *sgx.Platform
			if cfg.iso == paka.SGX {
				var err error
				platform, err = sgx.NewPlatform(sgx.PlatformConfig{Seed: 1})
				if err != nil {
					b.Fatalf("NewPlatform: %v", err)
				}
			}
			m, err := paka.New(context.Background(), paka.Config{
				Kind: paka.EUDM, Isolation: cfg.iso, Env: env, Platform: platform,
				Registry: registry, MaxThreads: cfg.threads, EnclaveSizeBytes: cfg.size,
			})
			if err != nil {
				b.Fatalf("paka.New: %v", err)
			}
			defer m.Stop()
			if err := m.ProvisionSubscriber(context.Background(), benchSUPI, benchKey); err != nil {
				b.Fatalf("provision: %v", err)
			}
			client := sbi.NewClient("bench-vnf", env, registry)
			rig := &benchRig{env: env, module: m, client: client}
			rig.invoke(b, paka.EUDM) // warm
			m.ResetRecorders()

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rig.invoke(b, paka.EUDM)
			}
			b.StopTimer()
			if s := m.TotalLatency().Summarize(); s.N > 0 {
				b.ReportMetric(float64(s.Median.Microseconds()), "virtual-us/LT")
			}
		})
	}
}

// BenchmarkFig9Latency regenerates Fig. 9: per-module functional and
// total latency, container vs SGX. Reported metrics: virtual µs medians.
func BenchmarkFig9Latency(b *testing.B) {
	for _, kind := range paka.Kinds() {
		for _, iso := range []paka.Isolation{paka.Container, paka.SGX} {
			b.Run(fmt.Sprintf("%s-%s", kind, iso), func(b *testing.B) {
				rig := newBenchRig(b, kind, iso, nil)
				rig.invoke(b, kind) // warm
				rig.module.ResetRecorders()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					rig.invoke(b, kind)
				}
				b.StopTimer()
				if s := rig.module.FunctionalLatency().Summarize(); s.N > 0 {
					b.ReportMetric(float64(s.Median.Nanoseconds())/1e3, "virtual-us/LF")
				}
				if s := rig.module.TotalLatency().Summarize(); s.N > 0 {
					b.ReportMetric(float64(s.Median.Nanoseconds())/1e3, "virtual-us/LT")
				}
			})
		}
	}
}

// BenchmarkFig10Response regenerates Fig. 10a: the VNF-side stable
// response time per module. Reported metric: virtual µs per response.
func BenchmarkFig10Response(b *testing.B) {
	for _, kind := range paka.Kinds() {
		for _, iso := range []paka.Isolation{paka.Container, paka.SGX} {
			b.Run(fmt.Sprintf("%s-%s", kind, iso), func(b *testing.B) {
				rig := newBenchRig(b, kind, iso, nil)
				rig.invoke(b, kind) // warm: Fig. 10b's initial request
				var total simclock.Cycles
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					total += rig.invoke(b, kind)
				}
				b.StopTimer()
				mean := rig.env.Model.Duration(total / simclock.Cycles(b.N))
				b.ReportMetric(float64(mean.Nanoseconds())/1e3, "virtual-us/RS")
			})
		}
	}
}

// BenchmarkTable3Transitions regenerates Table III's per-registration
// transition census: full UE registrations through an SGX slice, with the
// per-UE EENTER delta as the reported metric (paper: ~90).
func BenchmarkTable3Transitions(b *testing.B) {
	ctx := context.Background()
	tb, err := shield5g.NewTestbed(ctx, shield5g.SliceConfig{Isolation: shield5g.SGX, Seed: 1})
	if err != nil {
		b.Fatalf("NewTestbed: %v", err)
	}
	defer tb.Close()

	// Warm registration.
	sub, err := tb.AddSubscriber(ctx, benchKey, nil)
	if err != nil {
		b.Fatalf("AddSubscriber: %v", err)
	}
	if _, err := tb.Register(ctx, sub); err != nil {
		b.Fatalf("warm Register: %v", err)
	}

	eudm := tb.Slice.Modules[shield5g.EUDM]
	before := eudm.Stats().EENTER
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sub, err := tb.AddSubscriber(ctx, benchKey, nil)
		if err != nil {
			b.Fatalf("AddSubscriber: %v", err)
		}
		if _, err := tb.Register(ctx, sub); err != nil {
			b.Fatalf("Register: %v", err)
		}
	}
	b.StopTimer()
	delta := eudm.Stats().EENTER - before
	b.ReportMetric(float64(delta)/float64(b.N), "EENTER/registration")
}

// BenchmarkE2ESessionSetup regenerates the §V-B4 analysis: full UE
// registration + PDU session under each isolation mode. Reported metric:
// virtual ms of session setup (paper: ~62.38 ms under SGX).
func BenchmarkE2ESessionSetup(b *testing.B) {
	for _, iso := range []shield5g.Isolation{shield5g.Monolithic, shield5g.Container, shield5g.SGX} {
		b.Run(iso.String(), func(b *testing.B) {
			ctx := context.Background()
			tb, err := shield5g.NewTestbed(ctx, shield5g.SliceConfig{Isolation: iso, Seed: 1})
			if err != nil {
				b.Fatalf("NewTestbed: %v", err)
			}
			defer tb.Close()
			warm, err := tb.AddSubscriber(ctx, benchKey, nil)
			if err != nil {
				b.Fatalf("AddSubscriber: %v", err)
			}
			if _, err := tb.Register(ctx, warm); err != nil {
				b.Fatalf("warm Register: %v", err)
			}

			var totalVirtual float64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sub, err := tb.AddSubscriber(ctx, benchKey, nil)
				if err != nil {
					b.Fatalf("AddSubscriber: %v", err)
				}
				var acct simclock.Account
				sctx := simclock.WithAccount(ctx, &acct)
				sess, err := tb.Register(sctx, sub)
				if err != nil {
					b.Fatalf("Register: %v", err)
				}
				if err := sess.EstablishPDUSession(sctx, 1, "internet"); err != nil {
					b.Fatalf("PDU session: %v", err)
				}
				totalVirtual += float64(tb.Slice.Env.Model.Duration(acct.Total()).Milliseconds())
			}
			b.StopTimer()
			b.ReportMetric(totalVirtual/float64(b.N), "virtual-ms/setup")
		})
	}
}

// allocMeter measures heap allocations across a benchmark loop via
// runtime.MemStats deltas — the same window testing's ReportAllocs uses,
// but available to the JSON reports as a per-registration figure.
type allocMeter struct{ start runtime.MemStats }

func (a *allocMeter) begin() { runtime.ReadMemStats(&a.start) }

// end returns (allocs, bytes) per unit over n units.
func (a *allocMeter) end(n int) (float64, float64) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if n <= 0 {
		return 0, 0
	}
	return float64(ms.Mallocs-a.start.Mallocs) / float64(n),
		float64(ms.TotalAlloc-a.start.TotalAlloc) / float64(n)
}

// parallelRegPoint is one driver mode of BenchmarkRegisterManyParallel,
// exported to BENCH_parallel_registration.json when BENCH_JSON is set.
type parallelRegPoint struct {
	Mode              string  `json:"mode"`
	Parallelism       int     `json:"parallelism"`
	UEs               int     `json:"ues"`
	WallMS            float64 `json:"wall_ms"`
	WallRegsPerSec    float64 `json:"wall_regs_per_sec"`
	VirtualRegsPerSec float64 `json:"virtual_regs_per_sec"`
	AllocsPerReg      float64 `json:"allocs_per_reg"`
	BytesPerReg       float64 `json:"bytes_per_reg"`
}

type parallelRegReport struct {
	GOMAXPROCS  int                `json:"gomaxprocs"`
	Points      []parallelRegPoint `json:"points"`
	SpeedupWall float64            `json:"speedup_wall,omitempty"`
}

var parallelRegState struct {
	sync.Mutex
	report parallelRegReport
}

// recordParallelBench accumulates the sub-benchmark results and, when the
// BENCH_JSON env var names a path, writes the JSON report after each mode
// so a partial run still leaves a valid file.
func recordParallelBench(b *testing.B, p parallelRegPoint) {
	parallelRegState.Lock()
	defer parallelRegState.Unlock()
	r := &parallelRegState.report
	r.GOMAXPROCS = runtime.GOMAXPROCS(0)
	r.Points = append(r.Points, p)
	var seq, par float64
	for _, pt := range r.Points {
		if pt.Parallelism == 1 {
			seq = pt.WallMS
		} else if pt.Parallelism > 1 {
			par = pt.WallMS
		}
	}
	if seq > 0 && par > 0 {
		r.SpeedupWall = seq / par
	}
	path := os.Getenv("BENCH_JSON")
	if path == "" {
		return
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		b.Fatalf("marshal bench report: %v", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		b.Fatalf("write %s: %v", path, err)
	}
}

// BenchmarkRegisterManyParallel measures the mass-registration driver's
// wall-clock throughput sequentially and with an 8-worker pool over the
// lock-striped SGX core. On a multicore host the parallel mode's
// regs/s-wall should scale with cores; on a single-core host (GOMAXPROCS
// =1) the two modes are expected to tie. Set BENCH_JSON to a path to dump
// the comparison as JSON.
func BenchmarkRegisterManyParallel(b *testing.B) {
	const ues = 1000
	for _, mode := range []struct {
		name        string
		parallelism int
	}{
		{"sequential", 1},
		{"parallel8", 8},
	} {
		b.Run(fmt.Sprintf("%s-ues%d", mode.name, ues), func(b *testing.B) {
			ctx := context.Background()
			tb, err := shield5g.NewTestbed(ctx, shield5g.SliceConfig{Isolation: shield5g.SGX, Seed: 1})
			if err != nil {
				b.Fatalf("NewTestbed: %v", err)
			}
			defer tb.Close()
			warm, err := tb.AddSubscriber(ctx, benchKey, nil)
			if err != nil {
				b.Fatalf("AddSubscriber: %v", err)
			}
			if _, err := tb.Register(ctx, warm); err != nil {
				b.Fatalf("warm Register: %v", err)
			}

			newUE := func(int) (*shield5g.UE, error) {
				sub, err := tb.AddSubscriber(ctx, benchKey, nil)
				if err != nil {
					return nil, err
				}
				return sub.UE, nil
			}

			var last *shield5g.MassResult
			var meter allocMeter
			b.ReportAllocs()
			meter.begin()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := tb.Slice.GNB.RegisterManyWith(ctx, shield5g.MassOptions{
					N: ues, NewUE: newUE, Parallelism: mode.parallelism,
				})
				if err != nil {
					b.Fatalf("RegisterManyWith: %v", err)
				}
				if res.Failed > 0 {
					b.Fatalf("%d registrations failed: %v", res.Failed, res.FirstErrors)
				}
				last = res
			}
			b.StopTimer()
			allocsPerReg, bytesPerReg := meter.end(b.N * ues)
			b.ReportMetric(last.WallRegsPerSec, "regs/s-wall")
			b.ReportMetric(last.VirtualRegsPerSec, "regs/s-virtual")
			recordParallelBench(b, parallelRegPoint{
				Mode:              mode.name,
				Parallelism:       mode.parallelism,
				UEs:               ues,
				WallMS:            float64(last.Wall.Microseconds()) / 1e3,
				WallRegsPerSec:    last.WallRegsPerSec,
				VirtualRegsPerSec: last.VirtualRegsPerSec,
				AllocsPerReg:      allocsPerReg,
				BytesPerReg:       bytesPerReg,
			})
		})
	}
}

// chaosRegPoint is one mode of BenchmarkRegisterManyChaos, exported to
// BENCH_chaos_registration.json when BENCH_CHAOS_JSON is set.
type chaosRegPoint struct {
	Mode              string  `json:"mode"`
	FaultRate         float64 `json:"fault_rate"`
	UEs               int     `json:"ues"`
	Registered        int     `json:"registered"`
	Attempts          int     `json:"attempts"`
	WallMS            float64 `json:"wall_ms"`
	VirtualRegsPerSec float64 `json:"virtual_regs_per_sec"`
	AllocsPerReg      float64 `json:"allocs_per_reg"`
	BytesPerReg       float64 `json:"bytes_per_reg"`
}

type chaosRegReport struct {
	Points []chaosRegPoint `json:"points"`
	// OverheadPct is the virtual-throughput cost of the armed injector +
	// resilience layer at fault rate 0, relative to the bare invoker chain.
	OverheadPct float64 `json:"resilience_overhead_pct,omitempty"`
}

var chaosRegState struct {
	sync.Mutex
	report chaosRegReport
}

func recordChaosBench(b *testing.B, p chaosRegPoint) {
	chaosRegState.Lock()
	defer chaosRegState.Unlock()
	r := &chaosRegState.report
	r.Points = append(r.Points, p)
	var base, rate0 float64
	for _, pt := range r.Points {
		switch pt.Mode {
		case "baseline":
			base = pt.VirtualRegsPerSec
		case "chaos0.00":
			rate0 = pt.VirtualRegsPerSec
		}
	}
	if base > 0 && rate0 > 0 {
		r.OverheadPct = (base - rate0) / base * 100
		// Virtual throughput is deterministic, so this is a stable
		// acceptance check, not a flaky wall-clock comparison.
		if r.OverheadPct >= 5 {
			b.Errorf("resilience overhead at fault rate 0 is %.2f%%, want < 5%%", r.OverheadPct)
		}
	}
	path := os.Getenv("BENCH_CHAOS_JSON")
	if path == "" {
		return
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		b.Fatalf("marshal chaos bench report: %v", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		b.Fatalf("write %s: %v", path, err)
	}
}

// BenchmarkRegisterManyChaos measures mass registration through the
// resilience layer under seeded fault injection: a bare baseline, the
// armed injector at rate 0 (pure instrumentation overhead, asserted < 5%
// on deterministic virtual throughput), and two live fault rates. Set
// BENCH_CHAOS_JSON to a path to dump the comparison as JSON.
func BenchmarkRegisterManyChaos(b *testing.B) {
	const ues = 300
	for _, mode := range []struct {
		name string
		rate float64
		on   bool
	}{
		{"baseline", 0, false},
		{"chaos0.00", 0, true},
		{"chaos0.05", 0.05, true},
		{"chaos0.10", 0.10, true},
	} {
		b.Run(fmt.Sprintf("%s-ues%d", mode.name, ues), func(b *testing.B) {
			ctx := context.Background()
			cfg := shield5g.SliceConfig{Isolation: shield5g.SGX, Seed: 1}
			if mode.on {
				mix := shield5g.DefaultChaosMix(102, mode.rate)
				cfg.Chaos = &mix
			}
			tb, err := shield5g.NewTestbed(ctx, cfg)
			if err != nil {
				b.Fatalf("NewTestbed: %v", err)
			}
			defer tb.Close()
			warm, err := tb.AddSubscriber(ctx, benchKey, nil)
			if err != nil {
				b.Fatalf("AddSubscriber: %v", err)
			}
			if _, err := tb.Register(ctx, warm); err != nil {
				b.Fatalf("warm Register: %v", err)
			}

			var last *shield5g.MassResult
			var meter allocMeter
			b.ReportAllocs()
			meter.begin()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Provision fault-free so every injected fault lands on
				// the registration path under measurement.
				if tb.Slice.Chaos != nil {
					tb.Slice.Chaos.SetArmed(false)
				}
				devices := make([]*shield5g.UE, ues)
				for j := range devices {
					sub, err := tb.AddSubscriber(ctx, benchKey, nil)
					if err != nil {
						b.Fatalf("AddSubscriber: %v", err)
					}
					devices[j] = sub.UE
				}
				if tb.Slice.Chaos != nil {
					tb.Slice.Chaos.SetArmed(true)
				}
				res, err := tb.Slice.GNB.RegisterManyWith(ctx, shield5g.MassOptions{
					N:           ues,
					NewUE:       func(i int) (*shield5g.UE, error) { return devices[i], nil },
					MaxAttempts: 5,
					Chaos:       tb.Slice.Chaos,
				})
				if err != nil {
					b.Fatalf("RegisterManyWith: %v", err)
				}
				if res.Failed > 0 {
					b.Fatalf("%d registrations failed: %v", res.Failed, res.FirstErrors)
				}
				last = res
			}
			b.StopTimer()
			allocsPerReg, bytesPerReg := meter.end(b.N * ues)
			b.ReportMetric(last.VirtualRegsPerSec, "regs/s-virtual")
			b.ReportMetric(float64(last.Attempts-last.Registered), "retries")
			recordChaosBench(b, chaosRegPoint{
				Mode:              mode.name,
				FaultRate:         mode.rate,
				UEs:               ues,
				Registered:        last.Registered,
				Attempts:          last.Attempts,
				WallMS:            float64(last.Wall.Microseconds()) / 1e3,
				VirtualRegsPerSec: last.VirtualRegsPerSec,
				AllocsPerReg:      allocsPerReg,
				BytesPerReg:       bytesPerReg,
			})
		})
	}
}

// batchedRegPoint is one mode of BenchmarkRegisterManyBatched, exported
// to BENCH_batched_transitions.json when BENCH_BATCHED_JSON is set.
type batchedRegPoint struct {
	Mode              string  `json:"mode"`
	BatchSize         int     `json:"batch_size"`
	AVPoolDepth       int     `json:"av_pool_depth"`
	BinarySBI         bool    `json:"binary_sbi"`
	Switchless        bool    `json:"switchless"`
	UEs               int     `json:"ues"`
	Registered        int     `json:"registered"`
	TransPerReg       float64 `json:"transitions_per_reg"`
	EEnterPerReg      float64 `json:"eenter_per_reg"`
	EExitPerReg       float64 `json:"eexit_per_reg"`
	AEXPerReg         float64 `json:"aex_per_reg"`
	OCallsPerReg      float64 `json:"ocalls_per_reg"`
	VirtualRegsPerSec float64 `json:"virtual_regs_per_sec"`
	AllocsPerReg      float64 `json:"allocs_per_reg"`
	BytesPerReg       float64 `json:"bytes_per_reg"`
	PoolHits          uint64  `json:"pool_hits"`
	PoolMisses        uint64  `json:"pool_misses"`
	PoolRefills       uint64  `json:"pool_refills"`
	PoolPrewarmed     uint64  `json:"pool_prewarmed"`
}

type batchedRegReport struct {
	Points []batchedRegPoint `json:"points"`
	// ReductionAtBatch8 is the fractional drop in transitions per
	// registration of the batch-8 keep-alive mode vs the unbatched
	// baseline; the amortization contract requires >= 0.40.
	ReductionAtBatch8 float64 `json:"reduction_at_batch8,omitempty"`
	// ReductionCombined is the same figure for batch-8 plus the AV pool.
	ReductionCombined float64 `json:"reduction_combined,omitempty"`
}

var batchedRegState struct {
	sync.Mutex
	report batchedRegReport
}

func recordBatchedBench(b *testing.B, p batchedRegPoint) {
	batchedRegState.Lock()
	defer batchedRegState.Unlock()
	r := &batchedRegState.report
	r.Points = append(r.Points, p)
	var base, batched, combined float64
	for _, pt := range r.Points {
		switch pt.Mode {
		case "unbatched":
			base = pt.TransPerReg
		case "batched8":
			batched = pt.TransPerReg
		case "batched8+avpool8":
			combined = pt.TransPerReg
		}
	}
	if base > 0 && batched > 0 {
		r.ReductionAtBatch8 = 1 - batched/base
		// The transition census is a deterministic virtual count, so this
		// is a stable acceptance check, not a flaky wall-clock comparison.
		if r.ReductionAtBatch8 < 0.40 {
			b.Errorf("batch-8 keep-alive cut transitions/registration by %.1f%%, want >= 40%%",
				r.ReductionAtBatch8*100)
		}
	}
	if base > 0 && combined > 0 {
		r.ReductionCombined = 1 - combined/base
	}
	path := os.Getenv("BENCH_BATCHED_JSON")
	if path == "" {
		return
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		b.Fatalf("marshal batched bench report: %v", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		b.Fatalf("write %s: %v", path, err)
	}
}

// seedAllocsPerReg is the pre-optimization allocation cost of one full UE
// registration through the SGX slice: the allocs/op of
// BenchmarkRegisterManyBatched/unbatched-ues200 at the seed commit
// (111,812 allocs/op over 200 UEs). The allocation-discipline pass —
// cached MILENAGE key schedules, pooled HMAC/SHA-256 states, pooled SBI
// codecs, cached NAS cipher state — must cut this by at least half.
const seedAllocsPerReg = 559.0

// hotpathAllocReport is the allocation ledger of the registration hot
// path, exported to BENCH_hotpath_allocs.json when BENCH_HOTPATH_JSON is
// set. Every point carries allocs/registration and B/registration; the
// report-level reduction figure is the unbatched point vs the recorded
// seed baseline.
type hotpathAllocReport struct {
	BaselineAllocsPerReg float64           `json:"baseline_allocs_per_reg"`
	Points               []batchedRegPoint `json:"points"`
	// ReductionVsSeed is the fractional allocs/registration drop of the
	// unbatched mode vs the seed baseline; the PR contract requires >= 0.50.
	ReductionVsSeed float64 `json:"reduction_vs_seed,omitempty"`
}

var hotpathAllocState struct {
	sync.Mutex
	report hotpathAllocReport
}

// recordHotpathBench asserts the allocation budget on the unbatched mode
// and, when BENCH_HOTPATH_JSON names a path, writes the ledger after each
// mode so a partial run still leaves a valid file.
func recordHotpathBench(b *testing.B, p batchedRegPoint) {
	hotpathAllocState.Lock()
	defer hotpathAllocState.Unlock()
	r := &hotpathAllocState.report
	r.BaselineAllocsPerReg = seedAllocsPerReg
	r.Points = append(r.Points, p)
	if p.Mode == "unbatched" && p.AllocsPerReg > 0 {
		r.ReductionVsSeed = 1 - p.AllocsPerReg/seedAllocsPerReg
		// Allocation counts are deterministic modulo pool warm-up, so this
		// is a stable acceptance check on real allocator behaviour.
		if r.ReductionVsSeed < 0.50 {
			b.Errorf("hot path allocates %.1f allocs/registration, want <= %.1f (>= 50%% below the seed's %.0f)",
				p.AllocsPerReg, seedAllocsPerReg/2, seedAllocsPerReg)
		}
	}
	if p.Switchless {
		// The switchless ring's contract: steady-state registrations cross
		// the boundary with (nearly) zero EENTER/EEXIT, faster than the
		// classic stack, while staying inside the allocation budget. All
		// three are deterministic virtual figures.
		if p.TransPerReg >= 10 {
			b.Errorf("switchless mode pays %.2f transitions/registration, want < 10", p.TransPerReg)
		}
		if p.AllocsPerReg >= 100 {
			b.Errorf("switchless mode allocates %.2f allocs/registration, want < 100", p.AllocsPerReg)
		}
		for _, pt := range r.Points {
			if pt.BinarySBI && !pt.Switchless && p.VirtualRegsPerSec < pt.VirtualRegsPerSec {
				b.Errorf("switchless mode runs at %.4f virtual regs/s, slower than the classic binsbi mode's %.4f",
					p.VirtualRegsPerSec, pt.VirtualRegsPerSec)
			}
		}
	}
	path := os.Getenv("BENCH_HOTPATH_JSON")
	if path == "" {
		return
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		b.Fatalf("marshal hotpath alloc report: %v", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		b.Fatalf("write %s: %v", path, err)
	}
}

// BenchmarkRegisterManyBatched measures the boundary-amortization work:
// sequential mass registration unbatched (the seed's connection-per-
// request behaviour), over batch-8 keep-alive sessions, with the UDM's AV
// precomputation pool stacked on top, and finally with the negotiated
// binary SBI codec and a prewarmed pool. The reported
// transitions/registration metric is the EENTER+EEXIT delta summed over
// all three P-AKA modules, a deterministic virtual census; the batch-8
// mode must cut it by at least 40% vs unbatched. Set BENCH_BATCHED_JSON
// to a path to dump the comparison as JSON.
//
// Measurement windows: the first three modes provision subscribers inside
// the measured loop (the seed's accounting, kept bit-compatible so the
// points stay comparable across PRs). The binsbi mode instead provisions
// and prewarms all UEs before the window opens and measures steady-state
// registration alone — the cold-start refill (201 misses for 200 UEs in
// PR 5) is paid by PrewarmAVPool outside the window, which is exactly how
// an operator would deploy the pool.
func BenchmarkRegisterManyBatched(b *testing.B) {
	const ues = 200
	for _, mode := range []struct {
		name       string
		batch      int
		pool       int
		binsbi     bool
		switchless bool
	}{
		{"unbatched", 0, 0, false, false},
		{"batched8", 8, 0, false, false},
		{"batched8+avpool8", 8, 8, false, false},
		{"batched8+avpool8+binsbi", 8, 8, true, false},
		{"batched8+avpool8+binsbi+switchless", 8, 8, true, true},
	} {
		b.Run(fmt.Sprintf("%s-ues%d", mode.name, ues), func(b *testing.B) {
			ctx := context.Background()
			tb, err := shield5g.NewTestbed(ctx, shield5g.SliceConfig{
				Isolation: shield5g.SGX, Seed: 1, AVPoolDepth: mode.pool,
				BinarySBI: mode.binsbi, Switchless: mode.switchless,
			})
			if err != nil {
				b.Fatalf("NewTestbed: %v", err)
			}
			defer tb.Close()
			warm, err := tb.AddSubscriber(ctx, benchKey, nil)
			if err != nil {
				b.Fatalf("AddSubscriber: %v", err)
			}
			if _, err := tb.Register(ctx, warm); err != nil {
				b.Fatalf("warm Register: %v", err)
			}

			newUE := func(int) (*shield5g.UE, error) {
				sub, err := tb.AddSubscriber(ctx, benchKey, nil)
				if err != nil {
					return nil, err
				}
				return sub.UE, nil
			}

			statsBefore := sliceStats(tb)
			var last *shield5g.MassResult
			registered := 0
			var meter allocMeter
			var sumAllocs, sumBytes float64
			var sumStats sgx.StatsSnapshot
			b.ReportAllocs()
			if !mode.binsbi {
				meter.begin()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				opts := shield5g.MassOptions{
					N: ues, NewUE: newUE, BatchSize: mode.batch,
					Switchless: mode.switchless,
				}
				if mode.binsbi {
					// Provision and prewarm outside the measured window.
					b.StopTimer()
					devices := make([]*shield5g.UE, ues)
					supis := make([]string, ues)
					for j := range devices {
						sub, err := tb.AddSubscriber(ctx, benchKey, nil)
						if err != nil {
							b.Fatalf("AddSubscriber: %v", err)
						}
						devices[j] = sub.UE
						supis[j] = sub.SUPI.String()
					}
					if err := tb.Slice.PrewarmAVPool(ctx, supis); err != nil {
						b.Fatalf("PrewarmAVPool: %v", err)
					}
					opts.NewUE = func(i int) (*shield5g.UE, error) { return devices[i], nil }
					b.StartTimer()
					meter.begin()
					statsBefore = sliceStats(tb)
				}
				res, err := tb.Slice.GNB.RegisterManyWith(ctx, opts)
				if err != nil {
					b.Fatalf("RegisterManyWith: %v", err)
				}
				if res.Failed > 0 {
					b.Fatalf("%d registrations failed: %v", res.Failed, res.FirstErrors)
				}
				if mode.binsbi {
					a, bytes := meter.end(1)
					sumAllocs += a
					sumBytes += bytes
					statsAccum(&sumStats, statsDelta(sliceStats(tb), statsBefore))
				}
				registered += res.Registered
				last = res
			}
			b.StopTimer()
			var allocsPerReg, bytesPerReg float64
			if mode.binsbi {
				allocsPerReg = sumAllocs / float64(registered)
				bytesPerReg = sumBytes / float64(registered)
			} else {
				allocsPerReg, bytesPerReg = meter.end(registered)
				sumStats = statsDelta(sliceStats(tb), statsBefore)
			}
			n := float64(registered)
			transPerReg := float64(sumStats.EENTER+sumStats.EEXIT) / n
			b.ReportMetric(transPerReg, "transitions/registration")
			b.ReportMetric(last.VirtualRegsPerSec, "regs/s-virtual")
			b.ReportMetric(allocsPerReg, "allocs/registration")
			pool := tb.Slice.UDM.AVPoolStats()
			point := batchedRegPoint{
				Mode:              mode.name,
				BatchSize:         mode.batch,
				AVPoolDepth:       mode.pool,
				BinarySBI:         mode.binsbi,
				Switchless:        mode.switchless,
				UEs:               ues,
				Registered:        registered,
				TransPerReg:       transPerReg,
				EEnterPerReg:      float64(sumStats.EENTER) / n,
				EExitPerReg:       float64(sumStats.EEXIT) / n,
				AEXPerReg:         float64(sumStats.AEX) / n,
				OCallsPerReg:      float64(sumStats.OCALLs) / n,
				VirtualRegsPerSec: last.VirtualRegsPerSec,
				AllocsPerReg:      allocsPerReg,
				BytesPerReg:       bytesPerReg,
				PoolHits:          pool.Hits,
				PoolMisses:        pool.Misses,
				PoolRefills:       pool.Refills,
				PoolPrewarmed:     pool.Prewarmed,
			}
			recordBatchedBench(b, point)
			recordHotpathBench(b, point)
		})
	}
}

// sliceStats sums the enclave counters across every P-AKA module of the
// testbed's slice, so the per-registration report can break the boundary
// cost into its EENTER/EEXIT/AEX/OCALL components.
func sliceStats(tb *shield5g.Testbed) sgx.StatsSnapshot {
	var s sgx.StatsSnapshot
	for _, m := range tb.Slice.Modules {
		statsAccum(&s, m.Stats())
	}
	return s
}

// statsDelta subtracts before from after, field by field.
func statsDelta(after, before sgx.StatsSnapshot) sgx.StatsSnapshot {
	return sgx.StatsSnapshot{
		EENTER:     after.EENTER - before.EENTER,
		EEXIT:      after.EEXIT - before.EEXIT,
		AEX:        after.AEX - before.AEX,
		ERESUME:    after.ERESUME - before.ERESUME,
		ECALLs:     after.ECALLs - before.ECALLs,
		OCALLs:     after.OCALLs - before.OCALLs,
		PageFaults: after.PageFaults - before.PageFaults,
	}
}

// statsAccum adds d into s, field by field.
func statsAccum(s *sgx.StatsSnapshot, d sgx.StatsSnapshot) {
	s.EENTER += d.EENTER
	s.EEXIT += d.EEXIT
	s.AEX += d.AEX
	s.ERESUME += d.ERESUME
	s.ECALLs += d.ECALLs
	s.OCALLs += d.OCALLs
	s.PageFaults += d.PageFaults
}

// BenchmarkRealtimeModuleResponse runs the module request path in
// realtime mode: modelled cycles are converted into calibrated busy-wait
// at 1/20 scale, so wall-clock ns/op exhibits the paper's SGX-vs-container
// ordering directly.
func BenchmarkRealtimeModuleResponse(b *testing.B) {
	const scale = 0.05
	for _, iso := range []paka.Isolation{paka.Container, paka.SGX, paka.SEV} {
		b.Run(fmt.Sprintf("eUDM-%s-scale%.2f", iso, scale), func(b *testing.B) {
			realizer := costmodel.NewRealizer(costmodel.Default(), scale)
			rig := newBenchRig(b, paka.EUDM, iso, realizer)
			rig.invoke(b, paka.EUDM) // warm
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rig.invoke(b, paka.EUDM)
			}
		})
	}
}
