package gramine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"shield5g/internal/hmee/sgx"
	"shield5g/internal/simclock"
)

// Instance lifecycle errors.
var (
	// ErrNotRunning reports use of a stopped instance.
	ErrNotRunning = errors.New("gramine: instance not running")
	// ErrSessionClosed reports a request on a closed keep-alive session.
	ErrSessionClosed = errors.New("gramine: session closed")
)

// SyscallProfile is the per-request syscall census of the module's HTTPS
// server. Under Gramine every syscall is proxied through an OCALL, so
// these counts are the source of the ~90 EENTER/EEXIT pairs the paper
// measures per UE registration (Table III); under a plain container the
// same syscalls execute at native cost. Both runtimes share this profile
// so the SGX-vs-container comparison differs only in the per-event price.
type SyscallProfile struct {
	// Pre counts the pre-request machinery: epoll_wait wake-up, futexes,
	// accept processing.
	Pre int
	// Read counts the request reads: recvmsg ×2 plus a readiness ioctl.
	Read int
	// InHandler counts syscalls issued during the AKA function itself
	// (clock_gettime in the debug/stats build).
	InHandler int
	// Write counts the response path: sendmsg ×2, epoll_ctl re-arm,
	// futex wake.
	Write int
	// Post counts the post-request machinery: timer re-arm, IPC with
	// helper threads, stats flush.
	Post int
}

// DefaultSyscallProfile reproduces the paper's ~90 transitions per served
// request.
func DefaultSyscallProfile() SyscallProfile {
	return SyscallProfile{Pre: 38, Read: 3, InHandler: 1, Write: 4, Post: 43}
}

// UserTCPSyscallProfile models the mTCP-style user-level network stack the
// paper proposes as a §V-B7 optimization: the TCP machinery runs inside
// the enclave over shared-memory packet rings, collapsing the per-request
// syscall census to the ring notifications (DPDK-style I/O). The trade-off
// the paper notes — more functionality inside the enclave, bigger TCB —
// is reflected in the TCB accounting, not hidden.
func UserTCPSyscallProfile() SyscallProfile {
	return SyscallProfile{Pre: 4, Read: 1, InHandler: 1, Write: 1, Post: 5}
}

// Total sums all phases.
func (sp SyscallProfile) Total() int {
	return sp.Pre + sp.Read + sp.InHandler + sp.Write + sp.Post
}

// Launch-time constants.
const (
	// serverInitOCALLs is the cost of bringing the in-enclave HTTPS
	// server up: socket/bind/listen, certificate loading, epoll setup.
	// Together with the GSC bootstrap this reproduces the paper's ~650
	// extra EENTER/EEXITs for a server versus the empty workload.
	serverInitOCALLs = 590
	// warmupOCALLs and warmupVerifyBytes model the first request: the
	// lazy dlopen of network-stack dependencies triggers a handful of
	// OCALLs plus in-enclave verification (hashing) of the
	// lazily-loaded trusted files. The verification compute is what
	// makes the initial response ~20× the stable one (Fig. 10b) without
	// inflating the transition counts of Table III.
	warmupOCALLs      = 60
	warmupVerifyBytes = 2_800_000
)

// Breakdown reports the virtual-time windows of one served request using
// the paper's metric names: L_F (functional latency: the AKA function
// execution), L_T (total latency: request receipt to response send inside
// the module), and the full server-side residence that the caller extends
// into the response time R.
type Breakdown struct {
	Functional simclock.Cycles
	Total      simclock.Cycles
	ServerSide simclock.Cycles
}

// Instance is one running shielded container: an enclave booted through
// the Gramine LibOS, with its resident process entry and helper threads.
type Instance struct {
	platform *sgx.Platform
	image    *ShieldedImage
	enclave  *sgx.Enclave
	syscalls SyscallProfile
	exitless bool

	proc    *sgx.Thread
	helpers []*sgx.Thread

	// ring and dispatcher implement the switchless ECALL path: the
	// dispatcher pins one TCS for the life of the instance and serves
	// jobs submitted into the shared-memory ring. Both are nil unless
	// Manifest.SwitchlessECalls was set.
	ring       *sgx.Ring
	dispatcher *sgx.Thread

	mu      sync.Mutex
	running bool
	warm    bool
}

// LaunchOption tunes instance bring-up.
type LaunchOption func(*launchConfig)

type launchConfig struct {
	noServer bool
	syscalls *SyscallProfile
}

// WithoutServer skips the HTTPS server bring-up syscalls — used for the
// paper's "empty workload" GSC baseline (Table III).
func WithoutServer() LaunchOption {
	return func(c *launchConfig) { c.noServer = true }
}

// WithSyscallProfile overrides the per-request syscall census (for the
// user-level TCP ablation).
func WithSyscallProfile(sp SyscallProfile) LaunchOption {
	return func(c *launchConfig) { c.syscalls = &sp }
}

// Launch verifies the shielded image, builds its enclave (charging the
// full Fig. 7 load cost to ctx's account), enters the resident process and
// helper threads, and starts the in-enclave server.
func Launch(ctx context.Context, p *sgx.Platform, si *ShieldedImage, opts ...LaunchOption) (*Instance, error) {
	if p == nil || si == nil {
		return nil, errors.New("gramine: nil platform or image")
	}
	var lc launchConfig
	for _, opt := range opts {
		opt(&lc)
	}
	if err := si.Verify(); err != nil {
		return nil, fmt.Errorf("gramine: launch: %w", err)
	}
	enclave, err := p.Build(ctx, si.EnclaveConfig())
	if err != nil {
		return nil, fmt.Errorf("gramine: build enclave: %w", err)
	}

	inst := &Instance{
		platform: p,
		image:    si,
		enclave:  enclave,
		syscalls: DefaultSyscallProfile(),
		exitless: si.Manifest.Exitless,
		running:  true,
	}
	if lc.syscalls != nil {
		inst.syscalls = *lc.syscalls
	}

	// One never-returning ECALL for the process, one per helper thread.
	proc, err := enclave.EnterResident(ctx)
	if err != nil {
		enclave.Destroy()
		return nil, fmt.Errorf("gramine: enter process: %w", err)
	}
	inst.proc = proc
	for i := 0; i < HelperThreads; i++ {
		h, err := enclave.EnterResident(ctx)
		if err != nil {
			inst.Shutdown()
			return nil, fmt.Errorf("gramine: enter helper %d: %w", i, err)
		}
		inst.helpers = append(inst.helpers, h)
	}

	// Server bring-up syscalls.
	if !lc.noServer {
		m := p.Model()
		for i := 0; i < serverInitOCALLs; i++ {
			proc.OCall(m.SyscallNative, 32, 32)
		}
	}

	// The switchless dispatcher enters last, after the server is up, and
	// never returns: one more long-lived EENTER pinning one TCS for the
	// life of the instance.
	if si.Manifest.SwitchlessECalls {
		d, err := enclave.EnterResident(ctx)
		if err != nil {
			inst.Shutdown()
			return nil, fmt.Errorf("gramine: enter switchless dispatcher: %w", err)
		}
		inst.dispatcher = d
		inst.ring = sgx.NewRing(enclave, d, 0)
	}
	return inst, nil
}

// Enclave exposes the underlying enclave (stats, sealing, attestation).
func (i *Instance) Enclave() *sgx.Enclave { return i.enclave }

// Image returns the shielded image the instance was launched from.
func (i *Instance) Image() *ShieldedImage { return i.image }

// LoadDuration reports the modelled enclave load time (Fig. 7).
func (i *Instance) LoadDuration() time.Duration { return i.enclave.LoadDuration() }

// TCBBytes reports the trusted computing base carried by this instance:
// the bytes measured into the enclave identity. Optimizations that pull
// more functionality inside (user-level TCP) grow this number — the
// trade-off the paper calls out in §V-B7.
func (i *Instance) TCBBytes() uint64 {
	var n uint64
	for _, f := range i.image.Manifest.TrustedFiles {
		n += f.Size
	}
	return n
}

// Exitless reports whether switchless OCALLs are active.
func (i *Instance) Exitless() bool { return i.exitless }

// Switchless reports whether the instance runs a switchless ECALL ring.
func (i *Instance) Switchless() bool { return i.ring != nil }

// RingOccupancy reports the submission ring's published-but-unserved job
// count (0 without a ring). The UDM's AV mint reads it to widen batches
// opportunistically from cross-worker concurrency.
func (i *Instance) RingOccupancy() int {
	if i.ring == nil {
		return 0
	}
	return i.ring.Occupancy()
}

// RingStats snapshots the submission ring's counters (zero without a
// ring).
func (i *Instance) RingStats() sgx.RingStats {
	if i.ring == nil {
		return sgx.RingStats{}
	}
	return i.ring.Stats()
}

// Warm reports whether the first request has been served.
func (i *Instance) Warm() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.warm
}

// ServeRequest runs one HTTPS request through the in-enclave server: the
// pre-request syscall machinery, TLS and HTTP processing, the handler
// itself, the response path, and the post-request machinery. The handler
// receives the in-enclave thread to charge its own compute and memory
// touches; any real work (the actual AKA crypto) runs inside it.
//
// Costs are charged to the account carried by ctx, which must be dedicated
// to this request for the returned Breakdown windows to be meaningful.
func (i *Instance) ServeRequest(ctx context.Context, inBytes, outBytes int, handler func(*sgx.Thread) error) (Breakdown, error) {
	i.mu.Lock()
	if !i.running {
		i.mu.Unlock()
		return Breakdown{}, ErrNotRunning
	}
	first := !i.warm
	i.warm = true
	i.mu.Unlock()

	p := i.platform
	m := p.Model()
	acct := simclock.AccountFrom(ctx)
	// Bind a pooled request thread to this request's account and (in
	// parallel mode) its per-worker jitter stream.
	th := i.reqThread(ctx, acct)
	defer putThread(th)
	start := acct.Total()

	if first {
		// Lazy loading of network-stack dependencies: a few OCALLs and
		// the in-enclave verification of the lazily-read trusted files.
		for k := 0; k < warmupOCALLs; k++ {
			th.OCall(m.SyscallNative, 64, 64)
		}
		th.Compute(simclock.Cycles(warmupVerifyBytes) * m.TrustedFileHashPerByte)
		// The server-side TLS handshake for the first connection.
		th.Compute(m.TLSHandshakeServer)
	}

	jig := int(simclock.JitterFrom(ctx, p.Jitter()).Uint64n(3))
	for k := 0; k < i.syscalls.Pre+jig; k++ {
		i.ocall(th, m.SyscallNative, 16, 16)
	}

	functional, total, err := i.requestCensus(th, acct, inBytes, outBytes, handler, false)

	for k := 0; k < i.syscalls.Post; k++ {
		i.ocall(th, m.SyscallNative, 16, 16)
	}

	return Breakdown{
		Functional: functional,
		Total:      total,
		ServerSide: acct.Total() - start,
	}, err
}

// ServeRequestSwitchless is ServeRequest routed through the submission
// ring when ctx negotiated it; otherwise it falls back to the classic
// path. The ring route lives in its own entry point — not a branch inside
// ServeRequest — because submitting stores the handler in a pooled job,
// and Go's escape analysis would then charge every classic caller a
// heap-allocated closure for a path it never takes.
func (i *Instance) ServeRequestSwitchless(ctx context.Context, inBytes, outBytes int, handler func(*sgx.Thread) error) (Breakdown, error) {
	if i.ring == nil || !sgx.SwitchlessFrom(ctx) {
		return i.ServeRequest(ctx, inBytes, outBytes, handler)
	}
	i.mu.Lock()
	if !i.running {
		i.mu.Unlock()
		return Breakdown{}, ErrNotRunning
	}
	first := !i.warm
	i.warm = true
	i.mu.Unlock()
	return i.serveViaRing(ctx, inBytes, outBytes, handler, first, true, true)
}

// threadPool recycles the per-request sgx.Thread bindings that
// ServeRequest, ServeOnSession, OpenSession and Close mint: handlers are
// synchronous and never retain the thread, so one pooled binding per
// in-flight request replaces one heap allocation per served request on the
// keep-alive hot path.
var threadPool = sync.Pool{New: func() any { return new(sgx.Thread) }}

// reqThread binds a pooled thread to this request's account and ctx's
// jitter stream; release it with putThread when the request completes.
//
//shieldlint:hotpath
func (i *Instance) reqThread(ctx context.Context, acct *simclock.Account) *sgx.Thread {
	th := threadPool.Get().(*sgx.Thread)
	i.proc.BindRequest(ctx, acct, th)
	return th
}

func putThread(th *sgx.Thread) { threadPool.Put(th) }

// ocall issues one proxied syscall on th: through the exitless ring when
// enabled, otherwise a full EEXIT/EENTER transition pair.
//
//shieldlint:hotpath
func (i *Instance) ocall(th *sgx.Thread, untrusted simclock.Cycles, out, in int) {
	i.ocallVia(false, th, untrusted, out, in)
}

// ocallVia is ocall with an explicit routing decision: a request served on
// the switchless dispatcher (viaRing) must never leave the enclave, so its
// proxied syscalls always take the exitless handoff regardless of the
// instance-wide exitless setting.
//
//shieldlint:hotpath
func (i *Instance) ocallVia(viaRing bool, th *sgx.Thread, untrusted simclock.Cycles, out, in int) {
	if viaRing || i.exitless {
		th.OCallExitless(untrusted, out, in)
	} else {
		th.OCall(untrusted, out, in)
	}
}

// requestCensus charges the per-request half of the syscall census — the
// request reads, TLS and HTTP processing, the handler window, and the
// response path — and returns the L_F and L_T windows. ServeRequest and
// ServeOnSession share it so their charge order stays literally
// identical; only the connection-scoped Pre/Post machinery around it
// differs between the two paths.
func (i *Instance) requestCensus(th *sgx.Thread, acct *simclock.Account, inBytes, outBytes int, handler func(*sgx.Thread) error, viaRing bool) (functional, total simclock.Cycles, err error) {
	m := i.platform.Model()

	totalStart := acct.Total()
	for k := 0; k < i.syscalls.Read; k++ {
		i.ocallVia(viaRing, th, m.SyscallNative, 0, inBytes/i.syscalls.Read+1)
	}
	th.Compute(m.TLSRecordCost(inBytes) + m.HTTPCost(inBytes))
	th.Touch(uint64(inBytes))

	fnStart := acct.Total()
	for k := 0; k < i.syscalls.InHandler; k++ {
		i.ocallVia(viaRing, th, m.SyscallNative, 8, 8)
	}
	err = handler(th)
	fnEnd := acct.Total()

	th.Compute(m.HTTPCost(outBytes) + m.TLSRecordCost(outBytes))
	th.Touch(uint64(outBytes))
	for k := 0; k < i.syscalls.Write; k++ {
		i.ocallVia(viaRing, th, m.SyscallNative, outBytes/i.syscalls.Write+1, 0)
	}
	totalEnd := acct.Total()
	return fnEnd - fnStart, totalEnd - totalStart, err
}

// Pooled switchless job structs: submissions carry no closures, so the
// steady-state ring path stays inside the hot-path allocation budget.
var (
	serveJobPool   = sync.Pool{New: func() any { return new(ringServeJob) }}
	sessionJobPool = sync.Pool{New: func() any { return new(ringSessionJob) }}
	fnJobPool      = sync.Pool{New: func() any { return new(ringFnJob) }}
)

// ringServeJob serves one request on the switchless dispatcher: the same
// census ServeRequest/ServeOnSession charge, with every proxied syscall
// taking the exitless handoff — the request crosses the boundary with zero
// EENTER/EEXIT.
type ringServeJob struct {
	inst              *Instance
	ctx               context.Context
	acct              *simclock.Account
	inBytes, outBytes int
	handler           func(*sgx.Thread) error
	first, pre, post  bool
	bd                Breakdown
}

// Execute runs on the dispatcher's resident thread; costs land on the
// submitting request's account and jitter stream.
//
//shieldlint:hotpath
func (j *ringServeJob) Execute(*sgx.Thread) error {
	i := j.inst
	p := i.platform
	m := p.Model()
	acct := j.acct
	th := i.reqThread(j.ctx, acct)
	defer putThread(th)
	start := acct.Total()

	if j.first {
		for k := 0; k < warmupOCALLs; k++ {
			th.OCallExitless(m.SyscallNative, 64, 64)
		}
		th.Compute(simclock.Cycles(warmupVerifyBytes) * m.TrustedFileHashPerByte)
		th.Compute(m.TLSHandshakeServer)
	}

	jig := int(simclock.JitterFrom(j.ctx, p.Jitter()).Uint64n(3))
	n := jig
	if j.pre {
		n += i.syscalls.Pre
	}
	for k := 0; k < n; k++ {
		i.ocallVia(true, th, m.SyscallNative, 16, 16)
	}

	functional, total, err := i.requestCensus(th, acct, j.inBytes, j.outBytes, j.handler, true)

	if j.post {
		for k := 0; k < i.syscalls.Post; k++ {
			i.ocallVia(true, th, m.SyscallNative, 16, 16)
		}
	}
	j.bd = Breakdown{
		Functional: functional,
		Total:      total,
		ServerSide: acct.Total() - start,
	}
	return err
}

// serveViaRing submits one request into the switchless ring and blocks for
// its completion. pre/post select whether the connection-scoped Pre/Post
// machinery runs (a plain request) or is amortized by a session.
//
//shieldlint:hotpath
func (i *Instance) serveViaRing(ctx context.Context, inBytes, outBytes int, handler func(*sgx.Thread) error, first, pre, post bool) (Breakdown, error) {
	j := serveJobPool.Get().(*ringServeJob)
	j.inst, j.ctx, j.acct = i, ctx, simclock.AccountFrom(ctx)
	j.inBytes, j.outBytes, j.handler = inBytes, outBytes, handler
	j.first, j.pre, j.post = first, pre, post
	err := i.ring.Submit(ctx, j)
	bd := j.bd
	*j = ringServeJob{}
	serveJobPool.Put(j)
	return bd, err
}

// ringSessionJob runs the connection-scoped half of a switchless session:
// the accept/Pre machinery plus TLS handshake on open, the Post teardown
// on close.
type ringSessionJob struct {
	inst  *Instance
	ctx   context.Context
	first bool
	open  bool
}

//shieldlint:hotpath
func (j *ringSessionJob) Execute(*sgx.Thread) error {
	i := j.inst
	m := i.platform.Model()
	th := i.reqThread(j.ctx, simclock.AccountFrom(j.ctx))
	defer putThread(th)
	if j.open {
		if j.first {
			for k := 0; k < warmupOCALLs; k++ {
				th.OCallExitless(m.SyscallNative, 64, 64)
			}
			th.Compute(simclock.Cycles(warmupVerifyBytes) * m.TrustedFileHashPerByte)
		}
		for k := 0; k < i.syscalls.Pre; k++ {
			i.ocallVia(true, th, m.SyscallNative, 16, 16)
		}
		th.Compute(m.TLSHandshakeServer)
		return nil
	}
	for k := 0; k < i.syscalls.Post; k++ {
		i.ocallVia(true, th, m.SyscallNative, 16, 16)
	}
	return nil
}

// sessionViaRing submits a session open (accept machinery + handshake) or
// close (teardown) into the ring.
func (i *Instance) sessionViaRing(ctx context.Context, first, open bool) error {
	j := sessionJobPool.Get().(*ringSessionJob)
	j.inst, j.ctx, j.first, j.open = i, ctx, first, open
	err := i.ring.Submit(ctx, j)
	*j = ringSessionJob{}
	sessionJobPool.Put(j)
	return err
}

// ringFnJob runs a batch entry (DoBatch) on the dispatcher: the batch
// buffers cross through shared memory (shield cost, no transitions) and fn
// executes on a thread bound to the submitting request.
type ringFnJob struct {
	inst               *Instance
	ctx                context.Context
	argBytes, retBytes int
	fn                 func(*sgx.Thread) error
}

//shieldlint:hotpath
func (j *ringFnJob) Execute(*sgx.Thread) error {
	i := j.inst
	th := i.reqThread(j.ctx, simclock.AccountFrom(j.ctx))
	defer putThread(th)
	th.ShieldTransfer(j.argBytes, j.retBytes)
	return j.fn(th)
}

// Session is one persistent keep-alive connection into the in-enclave
// HTTPS server. The connection-scoped machinery — the accept/epoll/futex
// Pre census and the server-side TLS handshake — is paid once at
// OpenSession and the Post teardown once at Close, so pipelined requests
// served through ServeOnSession pay only the per-request census. A batch
// of B requests thus spreads the Pre+Post OCALLs (81 transition pairs
// under the default profile) over B requests.
type Session struct {
	inst *Instance
	// switchless records the connection's negotiated routing: a session
	// opened through the submission ring serves and closes through it
	// too, so one connection's census never mixes the two boundary
	// disciplines.
	switchless bool
	mu         sync.Mutex
	open       bool
}

// OpenSession accepts one persistent client connection: the pre-request
// accept machinery and the server-side TLS handshake, charged to ctx's
// account once for the whole session. The first connection ever accepted
// also pays the lazy warm-up the first ServeRequest would pay.
func (i *Instance) OpenSession(ctx context.Context) (*Session, error) {
	i.mu.Lock()
	if !i.running {
		i.mu.Unlock()
		return nil, ErrNotRunning
	}
	first := !i.warm
	i.warm = true
	i.mu.Unlock()

	if i.ring != nil && sgx.SwitchlessFrom(ctx) {
		if err := i.sessionViaRing(ctx, first, true); err != nil {
			return nil, err
		}
		return &Session{inst: i, open: true, switchless: true}, nil
	}

	m := i.platform.Model()
	th := i.reqThread(ctx, simclock.AccountFrom(ctx))
	defer putThread(th)

	if first {
		for k := 0; k < warmupOCALLs; k++ {
			th.OCall(m.SyscallNative, 64, 64)
		}
		th.Compute(simclock.Cycles(warmupVerifyBytes) * m.TrustedFileHashPerByte)
	}

	for k := 0; k < i.syscalls.Pre; k++ {
		i.ocall(th, m.SyscallNative, 16, 16)
	}
	th.Compute(m.TLSHandshakeServer)
	return &Session{inst: i, open: true}, nil
}

// ServeOnSession runs one pipelined request on an open session. The L_F
// and L_T Breakdown windows are bit-identical to a warm ServeRequest
// under the same jitter stream; ServerSide omits exactly the amortized
// Pre/Post machinery. The keep-alive readiness wake-ups (0–2 extra
// OCALLs deciding the connection has another request queued) are drawn
// from the same jitter position ServeRequest uses for its Pre variation,
// keeping the two paths' stochastic draws aligned.
func (i *Instance) ServeOnSession(ctx context.Context, s *Session, inBytes, outBytes int, handler func(*sgx.Thread) error) (Breakdown, error) {
	i.mu.Lock()
	if !i.running {
		i.mu.Unlock()
		return Breakdown{}, ErrNotRunning
	}
	i.mu.Unlock()
	if s == nil || s.inst != i {
		return Breakdown{}, errors.New("gramine: session belongs to a different instance")
	}
	s.mu.Lock()
	open := s.open
	s.mu.Unlock()
	if !open {
		return Breakdown{}, ErrSessionClosed
	}
	if s.switchless {
		// A connection negotiated onto the ring must never mix in classic
		// serves — its census discipline was fixed at open.
		return Breakdown{}, errors.New("gramine: switchless session must be served through ServeOnSessionSwitchless")
	}

	p := i.platform
	m := p.Model()
	acct := simclock.AccountFrom(ctx)
	th := i.reqThread(ctx, acct)
	defer putThread(th)
	start := acct.Total()

	jig := int(simclock.JitterFrom(ctx, p.Jitter()).Uint64n(3))
	for k := 0; k < jig; k++ {
		i.ocall(th, m.SyscallNative, 16, 16)
	}

	functional, total, err := i.requestCensus(th, acct, inBytes, outBytes, handler, false)
	return Breakdown{
		Functional: functional,
		Total:      total,
		ServerSide: acct.Total() - start,
	}, err
}

// ServeOnSessionSwitchless serves a ring-negotiated session's pipelined
// request through the submission ring; sessions opened classically fall
// back to ServeOnSession. Split from ServeOnSession for the same
// escape-analysis reason as ServeRequestSwitchless.
func (i *Instance) ServeOnSessionSwitchless(ctx context.Context, s *Session, inBytes, outBytes int, handler func(*sgx.Thread) error) (Breakdown, error) {
	if s == nil || !s.switchless || i.ring == nil {
		return i.ServeOnSession(ctx, s, inBytes, outBytes, handler)
	}
	i.mu.Lock()
	if !i.running {
		i.mu.Unlock()
		return Breakdown{}, ErrNotRunning
	}
	i.mu.Unlock()
	if s.inst != i {
		return Breakdown{}, errors.New("gramine: session belongs to a different instance")
	}
	s.mu.Lock()
	open := s.open
	s.mu.Unlock()
	if !open {
		return Breakdown{}, ErrSessionClosed
	}
	return i.serveViaRing(ctx, inBytes, outBytes, handler, false, false, false)
}

// Serve is shorthand for ServeOnSession on the owning instance.
func (s *Session) Serve(ctx context.Context, inBytes, outBytes int, handler func(*sgx.Thread) error) (Breakdown, error) {
	return s.inst.ServeOnSession(ctx, s, inBytes, outBytes, handler)
}

// ServeSwitchless is shorthand for ServeOnSessionSwitchless.
func (s *Session) ServeSwitchless(ctx context.Context, inBytes, outBytes int, handler func(*sgx.Thread) error) (Breakdown, error) {
	return s.inst.ServeOnSessionSwitchless(ctx, s, inBytes, outBytes, handler)
}

// Switchless reports whether the session was negotiated onto the
// submission ring at open.
func (s *Session) Switchless() bool { return s.switchless }

// Close tears the session's connection down, paying the post-request
// machinery once for the whole pipelined batch. Closing twice, or closing
// after the instance shut down (the connection died with the enclave), is
// a free no-op.
func (s *Session) Close(ctx context.Context) error {
	s.mu.Lock()
	if !s.open {
		s.mu.Unlock()
		return nil
	}
	s.open = false
	s.mu.Unlock()

	i := s.inst
	i.mu.Lock()
	if !i.running {
		i.mu.Unlock()
		return nil
	}
	i.mu.Unlock()

	if s.switchless && i.ring != nil {
		// A ring that closed under us means the enclave is going down
		// with the connection — the same free no-op as a dead instance.
		if err := i.sessionViaRing(ctx, false, false); err != nil && !errors.Is(err, sgx.ErrRingClosed) {
			return err
		}
		return nil
	}

	m := i.platform.Model()
	th := i.reqThread(ctx, simclock.AccountFrom(ctx))
	defer putThread(th)
	for k := 0; k < i.syscalls.Post; k++ {
		i.ocall(th, m.SyscallNative, 16, 16)
	}
	return nil
}

// Do runs fn on the resident in-enclave process thread outside the request
// path — used for provisioning secrets into the enclave and other
// maintenance that should not be measured as a served request.
func (i *Instance) Do(ctx context.Context, fn func(*sgx.Thread) error) error {
	i.mu.Lock()
	if !i.running {
		i.mu.Unlock()
		return ErrNotRunning
	}
	i.mu.Unlock()
	// Pin the request account the way ServeRequest does: maintenance work
	// (secret provisioning, AV pool refills) must stay visible to the
	// caller's account even when nested code re-derives it from ctx.
	ctx = simclock.WithAccount(ctx, simclock.AccountFrom(ctx))
	return fn(i.proc.WithRequest(ctx))
}

// DoBatch runs fn inside one fresh ECALL instead of on the resident
// request path: a batch of K AV generations charges K× the crypto but
// exactly one EENTER/EEXIT transition pair, with argBytes/retBytes
// shielded across the boundary once for the whole batch. The entry needs
// a free TCS slot beyond the resident threads (Manifest.MaxThreads ≥
// HelperThreads+2); acquisition queues, honouring ctx cancellation, so
// concurrent refills serialise on the spare slot instead of failing.
func (i *Instance) DoBatch(ctx context.Context, argBytes, retBytes int, fn func(*sgx.Thread) error) error {
	i.mu.Lock()
	if !i.running {
		i.mu.Unlock()
		return ErrNotRunning
	}
	i.mu.Unlock()
	ctx = simclock.WithAccount(ctx, simclock.AccountFrom(ctx))
	return i.enclave.ECall(ctx, argBytes, retBytes, func(t *sgx.Thread) error {
		return fn(t.WithRequest(ctx))
	})
}

// DoBatchSwitchless crosses the batch through the submission ring instead
// of a fresh ECALL: arguments and results still pay the shield cost, but
// no transition pair and no spare TCS slot. Without a ring (or without the
// ctx flag) it falls back to the classic DoBatch; the split keeps the
// classic entry free of the pooled-job handler store (see
// ServeRequestSwitchless).
func (i *Instance) DoBatchSwitchless(ctx context.Context, argBytes, retBytes int, fn func(*sgx.Thread) error) error {
	if i.ring == nil || !sgx.SwitchlessFrom(ctx) {
		return i.DoBatch(ctx, argBytes, retBytes, fn)
	}
	i.mu.Lock()
	if !i.running {
		i.mu.Unlock()
		return ErrNotRunning
	}
	i.mu.Unlock()
	ctx = simclock.WithAccount(ctx, simclock.AccountFrom(ctx))
	j := fnJobPool.Get().(*ringFnJob)
	j.inst, j.ctx, j.fn = i, ctx, fn
	j.argBytes, j.retBytes = argBytes, retBytes
	err := i.ring.Submit(ctx, j)
	*j = ringFnJob{}
	fnJobPool.Put(j)
	return err
}

// AccrueUptime models the instance staying deployed for d of virtual time
// (timer-interrupt AEX accumulation; Table III).
func (i *Instance) AccrueUptime(d time.Duration) { i.enclave.AccrueUptime(d) }

// Stats snapshots the enclave's SGX counters.
func (i *Instance) Stats() sgx.StatsSnapshot { return i.enclave.Stats() }

// Shutdown leaves the resident threads and destroys the enclave. It is
// idempotent.
func (i *Instance) Shutdown() {
	i.mu.Lock()
	if !i.running {
		i.mu.Unlock()
		return
	}
	i.running = false
	i.mu.Unlock()

	// The ring closes first so in-flight submissions drain (completed
	// exactly once with ErrRingClosed) before the dispatcher's TCS is
	// released and the enclave torn down.
	if i.ring != nil {
		i.ring.Close()
	}
	if i.dispatcher != nil {
		i.enclave.LeaveResident(i.dispatcher)
		i.dispatcher = nil
	}
	for _, h := range i.helpers {
		i.enclave.LeaveResident(h)
	}
	i.helpers = nil
	if i.proc != nil {
		i.enclave.LeaveResident(i.proc)
		i.proc = nil
	}
	i.enclave.Destroy()
}
