package sgx

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"shield5g/internal/simclock"
)

// ErrRingClosed reports a submission against a ring whose dispatcher has
// been stopped (enclave teardown or crash-restart). Pending jobs are
// completed exactly once with this error so callers can retry against the
// rebuilt module.
var ErrRingClosed = errors.New("sgx: switchless ring closed")

// DefaultRingSize is the slot count of a switchless submission ring. It
// must be a power of two; 64 slots comfortably covers the gNB driver's
// worker counts while keeping the ring inside a few cache lines per slot.
const DefaultRingSize = 64

type switchlessKey struct{}

// WithSwitchless marks ctx's request as negotiated for the switchless
// submission ring. The gNB driver attaches it when MassOptions.Switchless
// is set; the gramine instance routes marked requests through the ring
// when the module was launched with Manifest.SwitchlessECalls.
func WithSwitchless(ctx context.Context) context.Context {
	if on, ok := ctx.Value(switchlessKey{}).(bool); ok && on {
		return ctx
	}
	return context.WithValue(ctx, switchlessKey{}, true)
}

// SwitchlessFrom reports whether ctx's request negotiated the switchless
// fast path.
func SwitchlessFrom(ctx context.Context) bool {
	on, ok := ctx.Value(switchlessKey{}).(bool)
	return ok && on
}

// RingJob is one unit of in-enclave work submitted through a Ring. Execute
// runs on the dispatcher's resident thread; implementations rebind it to
// the request's account and jitter stream (Thread.BindRequest) so costs
// land on the submitting request.
type RingJob interface {
	Execute(t *Thread) error
}

// ringEntry pairs a job with its completion channel. Entries are pooled:
// the channel is allocated once per entry and reused across submissions,
// keeping the steady-state submit path allocation-free.
type ringEntry struct {
	job  RingJob
	done chan error
}

// ringSlot is one cache-line-padded ring cell. seq is the Vyukov sequence
// word: slot free when seq == pos, published when seq == pos+1, consumed
// when seq == pos+size.
type ringSlot struct {
	seq   atomic.Uint64
	entry *ringEntry
	_     [48]byte // pad to a 64-byte cache line; no false sharing between slots
}

// Ring dispatcher states.
const (
	ringRunning int32 = iota + 1
	ringClosed
)

// realSpinPolls bounds the dispatcher's wall-clock spinning between parks.
// This is real-CPU politeness only (the goroutine yields every iteration
// and parks after this many empty polls); the deterministic virtual spin
// budget is costmodel.SwitchlessSpinPolls on the virtual axis.
const realSpinPolls = 256

// Ring is a fixed-size shared-memory MPSC submission ring served by one
// dedicated in-enclave dispatcher thread — the HotCalls-style switchless
// ECALL path. Producers (gNB workers, session machinery) publish jobs with
// a seqlock-style two-phase write (claim the slot by CAS on tail, publish
// by storing seq); the single dispatcher consumes in order and executes
// each job on its resident TCS, so steady-state requests cross the enclave
// boundary with zero EENTER/EEXIT.
//
// Wake-up is adaptive spin-then-doorbell, accounted on two decoupled axes:
//
//   - Real: after realSpinPolls empty polls the dispatcher goroutine parks
//     on a buffered wake channel; the next Submit sends a non-blocking
//     wake. This keeps the host CPU polite but is timing-dependent, so it
//     never charges virtual cost.
//   - Virtual (deterministic): a submission pays a doorbell — one ECALL
//     round trip plus SwitchlessDoorbellCycles, counted on the enclave's
//     EENTER/EEXIT/ECALL stats — if and only if the ring was idle and the
//     virtual clock has passed the dispatcher's park deadline
//     (last activity + SwitchlessSpinBudget). Otherwise it pays only the
//     enqueue cost plus one poll share. Both sides of the decision read
//     the platform's virtual clock, so sequential same-seed runs replay
//     bit-identically.
type Ring struct {
	enclave *Enclave
	t       *Thread // dispatcher's resident in-enclave thread
	slots   []ringSlot
	mask    uint64

	tail atomic.Uint64 // next slot producers claim
	head atomic.Uint64 // next slot the consumer reads (atomic for Occupancy)

	state      atomic.Int32
	parked     atomic.Bool
	wake       chan struct{} // doorbell; buffered so a wake is never lost
	stopc      chan struct{} // closed by Close to stop the dispatcher
	stopped    chan struct{} // closed by the dispatcher on exit
	submitters atomic.Int64  // producers past the open-check, for drain

	entries sync.Pool

	// Virtual doorbell accounting. acctMu orders the idle/park-deadline
	// decision; in sequential mode acquisition order equals program order,
	// so the charged costs are deterministic.
	acctMu   sync.Mutex
	inflight int
	vParkAt  simclock.Cycles

	nSubmitted    atomic.Uint64
	nCompleted    atomic.Uint64
	nDoorbells    atomic.Uint64
	nParks        atomic.Uint64
	nBackpressure atomic.Uint64
	nDrained      atomic.Uint64
}

// RingStats is a point-in-time copy of a ring's counters.
type RingStats struct {
	// Submitted and Completed count jobs through the ring; after Close
	// they are equal (drained jobs complete with ErrRingClosed and count
	// under Drained, not Completed).
	Submitted, Completed uint64
	// Doorbells counts submissions that paid the wake ECALL on the
	// virtual axis.
	Doorbells uint64
	// Parks counts real dispatcher parks (timing-dependent; diagnostics
	// only, never part of a deterministic assertion).
	Parks uint64
	// Backpressure counts submissions that found the ring full and waited.
	Backpressure uint64
	// Drained counts jobs completed with ErrRingClosed at teardown.
	Drained uint64
}

// NewRing starts a switchless submission ring of the given slot count
// (rounded up to a power of two; 0 selects DefaultRingSize) served by a
// dispatcher running on t, a resident thread the caller entered with
// EnterResident. The caller keeps ownership of t and must LeaveResident
// after Close returns.
func NewRing(e *Enclave, t *Thread, size int) *Ring {
	if size <= 0 {
		size = DefaultRingSize
	}
	n := 1
	for n < size {
		n <<= 1
	}
	r := &Ring{
		enclave: e,
		t:       t,
		slots:   make([]ringSlot, n),
		mask:    uint64(n - 1),
		wake:    make(chan struct{}, 1),
		stopc:   make(chan struct{}),
		stopped: make(chan struct{}),
	}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	r.entries.New = func() any { return &ringEntry{done: make(chan error, 1)} }
	r.state.Store(ringRunning)
	go r.dispatch()
	return r
}

// Submit publishes job into the ring and blocks until the dispatcher has
// executed it, returning the job's error. The submission itself is
// allocation-free in steady state: entries are pooled and the job is a
// caller-pooled struct behind the RingJob interface.
//
//shieldlint:hotpath
func (r *Ring) Submit(ctx context.Context, job RingJob) error {
	r.submitters.Add(1)
	defer r.submitters.Add(-1)
	if r.state.Load() != ringRunning {
		return ErrRingClosed
	}
	ent := r.entries.Get().(*ringEntry)
	ent.job = job
	if err := r.enqueue(ent); err != nil {
		ent.job = nil
		r.entries.Put(ent)
		return err
	}
	r.accountSubmit(ctx)
	r.kick()
	err := <-ent.done
	r.accountDone()
	ent.job = nil
	r.entries.Put(ent)
	return err
}

// Occupancy reports the number of published-but-not-yet-dispatched jobs.
// The UDM's AV mint reads it to widen batches opportunistically from
// cross-worker concurrency.
func (r *Ring) Occupancy() int {
	t := r.tail.Load()
	h := r.head.Load()
	if t <= h {
		return 0
	}
	return int(t - h)
}

// Stats snapshots the ring counters.
func (r *Ring) Stats() RingStats {
	return RingStats{
		Submitted:    r.nSubmitted.Load(),
		Completed:    r.nCompleted.Load(),
		Doorbells:    r.nDoorbells.Load(),
		Parks:        r.nParks.Load(),
		Backpressure: r.nBackpressure.Load(),
		Drained:      r.nDrained.Load(),
	}
}

// Close stops the dispatcher and drains the ring: every published job is
// completed exactly once — already-dispatched jobs with their own result,
// the rest with ErrRingClosed — and late submitters get ErrRingClosed
// without publishing. Close is idempotent and returns once the ring is
// quiescent; the dispatcher's resident thread is then the caller's to
// release.
func (r *Ring) Close() {
	if !r.state.CompareAndSwap(ringRunning, ringClosed) {
		<-r.stopped
		return
	}
	close(r.stopc)
	<-r.stopped
	// The dispatcher drained on its way out, but a producer that passed
	// the open-check may still be publishing; keep draining until every
	// such submitter has unblocked and the ring is empty.
	for r.submitters.Load() > 0 || r.Occupancy() > 0 {
		r.drain()
		runtime.Gosched()
	}
}

// enqueue claims a slot by CAS on tail and publishes the entry by storing
// the slot sequence — the seqlock-style two-phase write. A full ring
// applies backpressure: the producer yields until the dispatcher frees a
// slot or the ring closes.
//
//shieldlint:hotpath
func (r *Ring) enqueue(ent *ringEntry) error {
	waited := false
	for {
		pos := r.tail.Load()
		slot := &r.slots[pos&r.mask]
		seq := slot.seq.Load()
		switch d := int64(seq) - int64(pos); {
		case d == 0:
			if r.tail.CompareAndSwap(pos, pos+1) {
				slot.entry = ent
				slot.seq.Store(pos + 1)
				return nil
			}
		case d < 0:
			// Full: the consumer has not yet freed this slot.
			if r.state.Load() != ringRunning {
				return ErrRingClosed
			}
			if !waited {
				waited = true
				r.nBackpressure.Add(1)
			}
			runtime.Gosched()
		default:
			// Lost the claim race; reload tail.
			runtime.Gosched()
		}
	}
}

// dequeue pops the next published entry. Single-consumer: only the
// dispatcher (and, after it exits, Close's drain) may call it.
func (r *Ring) dequeue() *ringEntry {
	pos := r.head.Load()
	slot := &r.slots[pos&r.mask]
	if slot.seq.Load() != pos+1 {
		return nil
	}
	ent := slot.entry
	slot.entry = nil
	slot.seq.Store(pos + uint64(len(r.slots)))
	r.head.Store(pos + 1)
	return ent
}

// kick delivers the real (timing-axis) wake: a non-blocking send on the
// buffered doorbell channel whenever the dispatcher has published intent
// to park. Sequentially consistent atomics make the publish/park handoff
// lose-free: if the dispatcher's pre-park recheck missed this entry, its
// parked store is visible to our load, so the wake lands in the buffer.
func (r *Ring) kick() {
	if r.parked.Load() {
		select {
		case r.wake <- struct{}{}:
		default:
		}
	}
}

// accountSubmit charges the submission on the deterministic virtual axis:
// every submission pays the enqueue cost; a submission that finds the
// dispatcher virtually parked (ring idle past the spin budget) pays the
// doorbell — one ECALL round trip, counted on the enclave transition stats
// — and the rest pay one poll share for the pickup probe.
func (r *Ring) accountSubmit(ctx context.Context) {
	e := r.enclave
	m := e.platform.model
	now := e.platform.clock.Elapsed()
	if at, ok := simclock.ArrivalFrom(ctx); ok && at > now {
		now = at
	}
	cost := m.SwitchlessEnqueueCycles
	r.acctMu.Lock()
	doorbell := r.inflight == 0 && now >= r.vParkAt
	r.inflight++
	if deadline := now + m.SwitchlessSpinBudget(); deadline > r.vParkAt {
		r.vParkAt = deadline
	}
	r.acctMu.Unlock()
	if doorbell {
		r.nDoorbells.Add(1)
		e.stats.EENTER.Add(1)
		e.stats.EEXIT.Add(1)
		e.stats.ECALLs.Add(1)
		cost += m.SwitchlessDoorbellCycles + m.ECALLRoundTrip()
	} else {
		cost += m.SwitchlessPollCycles
	}
	r.nSubmitted.Add(1)
	e.platform.charge(simclock.AccountFrom(ctx), cost)
}

// accountDone closes the virtual bracket opened by accountSubmit: the
// dispatcher keeps spinning for one budget past its last completed job
// before virtually parking.
func (r *Ring) accountDone() {
	m := r.enclave.platform.model
	now := r.enclave.platform.clock.Elapsed()
	r.acctMu.Lock()
	r.inflight--
	if deadline := now + m.SwitchlessSpinBudget(); deadline > r.vParkAt {
		r.vParkAt = deadline
	}
	r.acctMu.Unlock()
}

// dispatch is the dispatcher loop: poll, execute, spin briefly, park.
// Parking is two-phase (publish intent, recheck, block) so a concurrent
// publish can never be lost. The loop yields on every empty poll — its
// spin budget is the costmodel's, never a wall timer.
//
//shieldlint:hotpath
func (r *Ring) dispatch() {
	defer close(r.stopped)
	empty := 0
	for {
		if ent := r.dequeue(); ent != nil {
			empty = 0
			r.run(ent)
			continue
		}
		if r.state.Load() != ringRunning {
			r.drain()
			return
		}
		empty++
		if empty < realSpinPolls {
			runtime.Gosched()
			continue
		}
		r.parked.Store(true)
		if ent := r.dequeue(); ent != nil {
			r.parked.Store(false)
			empty = 0
			r.run(ent)
			continue
		}
		if r.state.Load() != ringRunning {
			r.parked.Store(false)
			r.drain()
			return
		}
		r.nParks.Add(1)
		select {
		case <-r.wake:
		case <-r.stopc:
		}
		r.parked.Store(false)
		empty = 0
	}
}

// run executes one job on the dispatcher's resident thread and completes
// it. The done channel is buffered, so completion never blocks the
// dispatcher on a slow receiver.
func (r *Ring) run(ent *ringEntry) {
	err := ent.job.Execute(r.t)
	r.nCompleted.Add(1)
	ent.done <- err
}

// drain completes every published entry with ErrRingClosed. Only the
// single consumer of the moment (dispatcher on exit, then Close) calls it,
// so each job completes exactly once.
func (r *Ring) drain() {
	for {
		ent := r.dequeue()
		if ent == nil {
			return
		}
		r.nDrained.Add(1)
		ent.done <- ErrRingClosed
	}
}
