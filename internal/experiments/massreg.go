package experiments

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	"shield5g/internal/deploy"
	"shield5g/internal/gnb"
	"shield5g/internal/metrics"
	"shield5g/internal/paka"
	"shield5g/internal/ue"
)

// MassRegPoint is one parallelism level of the concurrent
// mass-registration sweep.
type MassRegPoint struct {
	Parallelism int
	Registered  int
	Failed      int
	// Wall/Virtual are the driver-loop windows; the regs/sec rates are
	// successful registrations against each time base.
	Wall              time.Duration
	Virtual           time.Duration
	WallRegsPerSec    float64
	VirtualRegsPerSec float64
	// MedianSetup/P99Setup are the per-registration virtual setup-time
	// median and 99th percentile (the tail the pool/batching work targets).
	MedianSetup time.Duration
	P99Setup    time.Duration
	// EENTERPerReg is the eUDM module's enclave-entry count per
	// registration — the Table III census must hold under concurrency.
	EENTERPerReg float64
	// TransPerReg is the total enclave transition count (EENTER+EEXIT,
	// summed over all three P-AKA modules) per registration.
	TransPerReg float64
	// Speedup is the wall-clock gain over the sequential point.
	Speedup float64
}

// MassRegResult is the parallel gNBSIM driver sweep.
type MassRegResult struct {
	UEs        int
	GOMAXPROCS int
	Points     []MassRegPoint

	// TransitionsPerReg publishes the sequential point's whole-slice
	// transition census as a live gauge.
	TransitionsPerReg metrics.Gauge
}

// MassReg sweeps the gNBSIM mass-registration driver across worker pool
// sizes against a shielded (SGX) slice. Each point deploys a fresh
// same-seed slice, warms the path, then drives the same UE population
// through RegisterManyWith — so the points differ only in driver
// parallelism. It demonstrates that the lock-striped core sustains
// concurrent registrations without failures and without perturbing the
// per-registration SGX transition census.
func MassReg(ctx context.Context, cfg Config) (*MassRegResult, error) {
	n := cfg.iterations()
	if n < 20 {
		n = 20
	}
	if n > 400 {
		n = 400
	}

	result := &MassRegResult{UEs: n, GOMAXPROCS: runtime.GOMAXPROCS(0)}
	for _, par := range []int{1, 2, 4, 8} {
		s, err := deploy.NewSlice(ctx, deploy.SliceConfig{Isolation: paka.SGX, Seed: cfg.Seed + 31})
		if err != nil {
			return nil, err
		}
		point, err := massRegPoint(ctx, s, n, par)
		s.Stop()
		if err != nil {
			return nil, err
		}
		result.Points = append(result.Points, point)
	}
	result.TransitionsPerReg.Set(result.Points[0].TransPerReg)
	base := result.Points[0].Wall
	for i := range result.Points {
		if w := result.Points[i].Wall; w > 0 {
			result.Points[i].Speedup = float64(base) / float64(w)
		}
	}
	return result, nil
}

func massRegPoint(ctx context.Context, s *deploy.Slice, n, par int) (MassRegPoint, error) {
	// Warm the slice so one-off costs (TLS handshakes, enclave warm-up)
	// stay out of the steady-state census.
	warm, err := sliceSubscriber(ctx, s, "0000009999")
	if err != nil {
		return MassRegPoint{}, err
	}
	if _, err := s.GNB.RegisterUE(ctx, warm); err != nil {
		return MassRegPoint{}, err
	}
	eudm := s.Modules[paka.EUDM]
	entersBefore := eudm.Stats().EENTER
	transBefore := sliceTransitions(s)

	res, err := s.GNB.RegisterManyWith(ctx, gnb.MassOptions{
		N: n,
		NewUE: func(i int) (*ue.UE, error) {
			return sliceSubscriber(ctx, s, fmt.Sprintf("%010d", 4000+i))
		},
		Parallelism: par,
	})
	if err != nil {
		return MassRegPoint{}, err
	}
	point := MassRegPoint{
		Parallelism:       res.Parallelism,
		Registered:        res.Registered,
		Failed:            res.Failed,
		Wall:              res.Wall,
		Virtual:           res.Virtual,
		WallRegsPerSec:    res.WallRegsPerSec,
		VirtualRegsPerSec: res.VirtualRegsPerSec,
		MedianSetup:       res.SetupTimes.Summarize().Median,
		P99Setup:          res.SetupTimes.Summarize().P99,
	}
	if res.Registered > 0 {
		point.EENTERPerReg = float64(eudm.Stats().EENTER-entersBefore) / float64(res.Registered)
		point.TransPerReg = float64(sliceTransitions(s)-transBefore) / float64(res.Registered)
	}
	return point, nil
}

// sliceTransitions sums the enclave transitions (EENTER+EEXIT) across
// every P-AKA module of the slice.
func sliceTransitions(s *deploy.Slice) uint64 {
	var n uint64
	for _, m := range s.Modules {
		st := m.Stats()
		n += st.EENTER + st.EEXIT
	}
	return n
}

// Render prints the sweep table.
func (r *MassRegResult) Render(w io.Writer) {
	fprintf(w, "Concurrent mass registration through the shielded core (%d UEs, GOMAXPROCS=%d)\n", r.UEs, r.GOMAXPROCS)
	fprintf(w, "%-12s %6s %6s %10s %10s %10s %12s %12s %9s %8s %8s\n",
		"parallelism", "ok", "fail", "wall", "median", "p99", "wall reg/s", "virt reg/s", "EENTER/r", "trans/r", "speedup")
	for _, p := range r.Points {
		fprintf(w, "%-12d %6d %6d %10s %10s %10s %12.0f %12.1f %9.1f %8.1f %7.2fx\n",
			p.Parallelism, p.Registered, p.Failed,
			p.Wall.Round(time.Millisecond), p.MedianSetup.Round(10*time.Microsecond),
			p.P99Setup.Round(10*time.Microsecond),
			p.WallRegsPerSec, p.VirtualRegsPerSec, p.EENTERPerReg, p.TransPerReg, p.Speedup)
	}
	fprintf(w, "transitions/registration gauge (sequential census): %.1f\n", r.TransitionsPerReg.Value())
	fprintf(w, "(wall-clock speedup tracks available cores; the per-registration enclave\n")
	fprintf(w, " transition census stays at the paper's ~90 regardless of driver parallelism)\n")
}

// WriteCSV emits the sweep series.
func (r *MassRegResult) WriteCSV(w io.Writer) error {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Parallelism),
			fmt.Sprintf("%d", p.Registered),
			fmt.Sprintf("%d", p.Failed),
			f(float64(p.Wall) / float64(time.Millisecond)),
			f(float64(p.MedianSetup) / float64(time.Millisecond)),
			f(float64(p.P99Setup) / float64(time.Millisecond)),
			f(p.WallRegsPerSec),
			f(p.VirtualRegsPerSec),
			f(p.EENTERPerReg),
			f(p.TransPerReg),
			f(p.Speedup),
		})
	}
	return writeCSV(w, []string{
		"parallelism", "registered", "failed", "wall_ms", "median_setup_ms", "p99_setup_ms",
		"wall_regs_per_sec", "virtual_regs_per_sec", "eenter_per_reg", "transitions_per_reg", "speedup",
	}, rows)
}
