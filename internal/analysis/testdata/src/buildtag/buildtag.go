// Package buildtag is a loader regression fixture: the sibling file is
// excluded by its //go:build ignore constraint (it deliberately does
// not type-check, so wrongly including it fails CheckDir loudly), and
// the generic helpers below must load cleanly through the go/types
// Instances path the call graph relies on.
package buildtag

type number interface{ ~int | ~int64 }

func sum[T number](xs []T) T {
	var t T
	for _, x := range xs {
		t += x
	}
	return t
}

func mapTo[T, U any](xs []T, f func(T) U) []U {
	out := make([]U, 0, len(xs))
	for _, x := range xs {
		out = append(out, f(x))
	}
	return out
}

// Total instantiates both generics so Info.Instances is populated and
// the explicit-instantiation syntax exercises staticCallee's IndexExpr
// unwrapping.
func Total(xs []int) int64 {
	widen := mapTo[int, int64]
	return sum(widen(xs, func(x int) int64 { return int64(x) }))
}
