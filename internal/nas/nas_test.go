package nas

import (
	"bytes"
	"crypto/cipher"
	"encoding/binary"
	"errors"
	"reflect"
	"testing"
	"testing/quick"

	"shield5g/internal/crypto/suci"
)

func sampleSUCI() *suci.SUCI {
	return &suci.SUCI{
		MCC:              "001",
		MNC:              "01",
		RoutingIndicator: "0000",
		Scheme:           suci.SchemeProfileA,
		HomeKeyID:        1,
		SchemeOutput:     bytes.Repeat([]byte{0xab}, 50),
	}
}

func sampleGUTI() GUTI {
	return GUTI{MCC: "001", MNC: "01", AMFRegionID: 0x11, AMFSetID: 0x3ff, AMFPointer: 0x2a, TMSI: 0xdeadbeef}
}

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	data, err := Encode(m)
	if err != nil {
		t.Fatalf("Encode(%s): %v", m.Type(), err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode(%s): %v", m.Type(), err)
	}
	return got
}

func TestRoundTripAllMessages(t *testing.T) {
	msgs := []Message{
		&RegistrationRequest{
			RegistrationType: RegistrationInitial,
			NgKSI:            3,
			Identity:         MobileIdentity{SUCI: sampleSUCI()},
			Capabilities:     []byte{0xf0, 0x70},
		},
		&RegistrationRequest{
			RegistrationType: RegistrationMobility,
			Identity:         MobileIdentity{GUTI: func() *GUTI { g := sampleGUTI(); return &g }()},
		},
		&AuthenticationRequest{NgKSI: 1, ABBA: []byte{0, 0}, RAND: [16]byte{1, 2}, AUTN: [16]byte{3, 4}},
		&AuthenticationResponse{ResStar: [16]byte{9, 8, 7}},
		&AuthenticationFailure{Cause: CauseSyncFailure, AUTS: bytes.Repeat([]byte{5}, 14)},
		&AuthenticationFailure{Cause: CauseMACFailure},
		&AuthenticationReject{},
		&SecurityModeCommand{NgKSI: 1, IntegrityAlg: AlgNIA2, CipheringAlg: AlgNEA2},
		&SecurityModeComplete{},
		&RegistrationAccept{GUTI: sampleGUTI()},
		&RegistrationComplete{},
		&DeregistrationRequest{NgKSI: 2},
		&PDUSessionEstablishmentRequest{SessionID: 1, DNN: "internet"},
		&PDUSessionEstablishmentAccept{SessionID: 1, UEAddress: "10.0.0.2"},
	}
	for _, m := range msgs {
		t.Run(m.Type().String(), func(t *testing.T) {
			got := roundTrip(t, m)
			if !reflect.DeepEqual(got, m) {
				t.Fatalf("round trip mismatch:\n got %#v\nwant %#v", got, m)
			}
		})
	}
}

func TestEncodeValidatesIdentity(t *testing.T) {
	if _, err := Encode(&RegistrationRequest{}); err == nil {
		t.Fatal("empty identity accepted")
	}
	g := sampleGUTI()
	bad := &RegistrationRequest{Identity: MobileIdentity{SUCI: sampleSUCI(), GUTI: &g}}
	if _, err := Encode(bad); err == nil {
		t.Fatal("double identity accepted")
	}
	if _, err := Encode(nil); err == nil {
		t.Fatal("nil message accepted")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("nil decode = %v", err)
	}
	if _, err := Decode([]byte{0x00, 0x00, 0x41}); !errors.Is(err, ErrBadDiscriminator) {
		t.Fatalf("bad EPD = %v", err)
	}
	if _, err := Decode([]byte{EPD5GMM, 0x00, 0xFF}); !errors.Is(err, ErrUnknownMessage) {
		t.Fatalf("unknown type = %v", err)
	}
	if _, err := Decode([]byte{EPD5GMM, shtProtected, 0x41}); err == nil {
		t.Fatal("protected message decoded without context")
	}
	// Truncated body.
	data, err := Encode(&AuthenticationRequest{})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if _, err := Decode(data[:len(data)-3]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated body = %v", err)
	}
	// Trailing garbage.
	if _, err := Decode(append(data, 0x00)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestMessageTypeString(t *testing.T) {
	if MsgAuthenticationRequest.String() != "AuthenticationRequest" {
		t.Fatal("known type name wrong")
	}
	if MessageType(0x00).String() != "MessageType(0x00)" {
		t.Fatal("unknown type name wrong")
	}
}

func TestGUTIString(t *testing.T) {
	g := sampleGUTI()
	if g.String() == "" {
		t.Fatal("empty GUTI string")
	}
}

// Property: registration requests with arbitrary GUTI contents round-trip.
func TestGUTIRoundTripProperty(t *testing.T) {
	f := func(region byte, set uint16, ptr byte, tmsi uint32) bool {
		g := GUTI{MCC: "001", MNC: "01", AMFRegionID: region, AMFSetID: set & 0x3ff, AMFPointer: ptr & 0x3f, TMSI: tmsi}
		m := &RegistrationAccept{GUTI: g}
		data, err := Encode(m)
		if err != nil {
			return false
		}
		got, err := Decode(data)
		if err != nil {
			return false
		}
		acc, ok := got.(*RegistrationAccept)
		return ok && acc.GUTI == g
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: arbitrary scheme outputs survive the SUCI identity codec.
func TestSUCIIdentityRoundTripProperty(t *testing.T) {
	f := func(out []byte, keyID byte) bool {
		if len(out) > 4096 {
			out = out[:4096]
		}
		s := sampleSUCI()
		s.HomeKeyID = keyID
		s.SchemeOutput = out
		m := &RegistrationRequest{RegistrationType: RegistrationInitial, Identity: MobileIdentity{SUCI: s}}
		data, err := Encode(m)
		if err != nil {
			return false
		}
		got, err := Decode(data)
		if err != nil {
			return false
		}
		rr, ok := got.(*RegistrationRequest)
		if !ok || rr.Identity.SUCI == nil {
			return false
		}
		return bytes.Equal(rr.Identity.SUCI.SchemeOutput, out) && rr.Identity.SUCI.HomeKeyID == keyID
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// --- security context ---

func testContexts(t *testing.T) (*SecurityContext, *SecurityContext) {
	t.Helper()
	kamf := bytes.Repeat([]byte{0x5a}, 32)
	ue, err := NewSecurityContext(kamf)
	if err != nil {
		t.Fatalf("NewSecurityContext: %v", err)
	}
	net, err := NewSecurityContext(kamf)
	if err != nil {
		t.Fatalf("NewSecurityContext: %v", err)
	}
	return ue, net
}

func TestProtectUnprotectRoundTrip(t *testing.T) {
	ue, net := testContexts(t)
	msg := &AuthenticationResponse{ResStar: [16]byte{1, 2, 3}}
	wire, err := ue.Protect(msg, true)
	if err != nil {
		t.Fatalf("Protect: %v", err)
	}
	got, err := net.Unprotect(wire, true)
	if err != nil {
		t.Fatalf("Unprotect: %v", err)
	}
	if !reflect.DeepEqual(got, msg) {
		t.Fatalf("round trip mismatch: %#v", got)
	}
}

func TestProtectCiphersPayload(t *testing.T) {
	ue, _ := testContexts(t)
	msg := &PDUSessionEstablishmentRequest{SessionID: 1, DNN: "internet-internet"}
	wire, err := ue.Protect(msg, true)
	if err != nil {
		t.Fatalf("Protect: %v", err)
	}
	if bytes.Contains(wire, []byte("internet-internet")) {
		t.Fatal("protected message leaks plaintext DNN")
	}
}

func TestUnprotectRejectsTamper(t *testing.T) {
	ue, net := testContexts(t)
	wire, err := ue.Protect(&SecurityModeComplete{}, true)
	if err != nil {
		t.Fatalf("Protect: %v", err)
	}
	wire[len(wire)-1] ^= 1
	if _, err := net.Unprotect(wire, true); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("tampered unprotect = %v, want ErrIntegrity", err)
	}
}

func TestUnprotectRejectsReplay(t *testing.T) {
	ue, net := testContexts(t)
	wire, err := ue.Protect(&SecurityModeComplete{}, true)
	if err != nil {
		t.Fatalf("Protect: %v", err)
	}
	if _, err := net.Unprotect(wire, true); err != nil {
		t.Fatalf("first unprotect: %v", err)
	}
	if _, err := net.Unprotect(wire, true); !errors.Is(err, ErrReplay) {
		t.Fatalf("replayed unprotect = %v, want ErrReplay", err)
	}
}

func TestUnprotectDirectionSeparation(t *testing.T) {
	ue, net := testContexts(t)
	wire, err := ue.Protect(&SecurityModeComplete{}, true)
	if err != nil {
		t.Fatalf("Protect: %v", err)
	}
	// Treating an uplink message as downlink must fail the MAC.
	if _, err := net.Unprotect(wire, false); err == nil {
		t.Fatal("direction confusion accepted")
	}
}

func TestUnprotectWrongKey(t *testing.T) {
	ue, _ := testContexts(t)
	other, err := NewSecurityContext(bytes.Repeat([]byte{0x77}, 32))
	if err != nil {
		t.Fatalf("NewSecurityContext: %v", err)
	}
	wire, err := ue.Protect(&SecurityModeComplete{}, true)
	if err != nil {
		t.Fatalf("Protect: %v", err)
	}
	if _, err := other.Unprotect(wire, true); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("wrong-key unprotect = %v, want ErrIntegrity", err)
	}
}

func TestUnprotectHeaderErrors(t *testing.T) {
	_, net := testContexts(t)
	if _, err := net.Unprotect([]byte{EPD5GMM}, true); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short unprotect = %v", err)
	}
	long := make([]byte, 16)
	long[0] = 0x12
	if _, err := net.Unprotect(long, true); !errors.Is(err, ErrBadDiscriminator) {
		t.Fatalf("bad EPD unprotect = %v", err)
	}
	long[0] = EPD5GMM
	long[1] = shtPlain
	if _, err := net.Unprotect(long, true); err == nil {
		t.Fatal("plain SHT accepted by Unprotect")
	}
}

func TestCountsAdvance(t *testing.T) {
	ue, net := testContexts(t)
	for i := 0; i < 5; i++ {
		wire, err := ue.Protect(&SecurityModeComplete{}, true)
		if err != nil {
			t.Fatalf("Protect: %v", err)
		}
		if _, err := net.Unprotect(wire, true); err != nil {
			t.Fatalf("Unprotect %d: %v", i, err)
		}
	}
	up, down := ue.Counts()
	if up != 5 || down != 0 {
		t.Fatalf("UE counts = %d/%d, want 5/0", up, down)
	}
	up, down = net.Counts()
	if up != 5 || down != 0 {
		t.Fatalf("net counts = %d/%d, want 5/0", up, down)
	}
}

func TestNewSecurityContextBadKey(t *testing.T) {
	if _, err := NewSecurityContext(make([]byte, 16)); err == nil {
		t.Fatal("short K_AMF accepted")
	}
}

// Property: any message survives protect/unprotect in both directions.
func TestProtectRoundTripProperty(t *testing.T) {
	ue, net := testContexts(t)
	f := func(res [16]byte) bool {
		up, err := ue.Protect(&AuthenticationResponse{ResStar: res}, true)
		if err != nil {
			return false
		}
		got, err := net.Unprotect(up, true)
		if err != nil {
			return false
		}
		ar, ok := got.(*AuthenticationResponse)
		if !ok || ar.ResStar != res {
			return false
		}
		down, err := net.Protect(&RegistrationAccept{GUTI: sampleGUTI()}, false)
		if err != nil {
			return false
		}
		_, err = ue.Unprotect(down, false)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Golden equivalence: the context's manual CTR must be bit-identical to
// the stdlib cipher.NewCTR stream it replaced, across message sizes that
// cover partial, exact and multi-block keystream consumption.
func TestXORKeyStreamMatchesStdlibCTR(t *testing.T) {
	sc, _ := testContexts(t)
	for _, size := range []int{0, 1, 15, 16, 17, 32, 33, 100} {
		src := make([]byte, size)
		for i := range src {
			src[i] = byte(i*7 + 3)
		}
		for _, dir := range []byte{dirUplink, dirDownlink} {
			for _, count := range []uint32{0, 1, 0xFFFFFFFF} {
				got := make([]byte, size)
				sc.xorKeyStream(got, src, dir, count)

				var iv [16]byte
				binary.BigEndian.PutUint32(iv[0:4], count)
				iv[4] = dir << 2
				want := make([]byte, size)
				cipher.NewCTR(sc.block, iv[:]).XORKeyStream(want, src)

				if !bytes.Equal(got, want) {
					t.Fatalf("size=%d dir=%d count=%d: manual CTR diverges from cipher.NewCTR", size, dir, count)
				}
			}
		}
	}
}
