package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one shieldlint check. The shape deliberately
// mirrors golang.org/x/tools/go/analysis so the checks could migrate to
// the upstream framework if the module ever grows the dependency.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //shieldlint:ignore directives.
	Name string
	// Doc is a one-line summary of the enforced invariant.
	Doc string
	// Run reports findings on one package through pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass provides one analyzer with one type-checked package, plus the
// whole-program view (call graph, summary stores) shared by every
// package of the run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	// Prog is the program this package belongs to. Interprocedural
	// analyzers reach the call graph via Prog.CallGraph(), memoize
	// whole-program passes via Prog.Memo, and publish per-function
	// summaries via Prog.Facts.
	Prog *Program

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding. Suppressed findings matched an
// annotation directive; they are retained (rather than dropped) so the
// test suite can verify every annotation in the tree is load-bearing.
type Diagnostic struct {
	Analyzer   string
	Pos        token.Position
	Message    string
	Suppressed bool
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Run applies every analyzer to every package and returns the findings
// sorted by position, with annotation-suppressed findings flagged.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunProgram(NewProgram(pkgs), analyzers)
}

// RunProgram is Run over a pre-built Program, for callers that also
// want access to the program's call graph or summary stores afterwards.
func RunProgram(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		ann := collectAnnotations(pkg)
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Fset: pkg.Fset, Pkg: pkg, Prog: prog, diags: &diags}
			start := len(diags)
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.ImportPath, err)
			}
			for i := start; i < len(diags); i++ {
				if ann.suppresses(diags[i].Analyzer, diags[i].Pos) {
					diags[i].Suppressed = true
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// Active returns the findings that are not annotation-suppressed.
func Active(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

// annotations indexes //shieldlint: directives by file and line.
type annotations struct {
	// file maps a filename to the analyzers suppressed file-wide.
	file map[string]map[string]bool
	// line maps filename -> line -> suppressed analyzers. A directive
	// covers its own line and the one directly below it.
	line map[string]map[int]map[string]bool
}

func collectAnnotations(pkg *Package) *annotations {
	ann := &annotations{
		file: make(map[string]map[string]bool),
		line: make(map[string]map[int]map[string]bool),
	}
	for _, f := range pkg.Files {
		pkgLine := pkg.Fset.Position(f.Package).Line
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				if pos.Line <= pkgLine {
					set := ann.file[pos.Filename]
					if set == nil {
						set = make(map[string]bool)
						ann.file[pos.Filename] = set
					}
					for _, n := range names {
						set[n] = true
					}
					continue
				}
				lines := ann.line[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					ann.line[pos.Filename] = lines
				}
				for _, ln := range []int{pos.Line, pos.Line + 1} {
					set := lines[ln]
					if set == nil {
						set = make(map[string]bool)
						lines[ln] = set
					}
					for _, n := range names {
						set[n] = true
					}
				}
			}
		}
	}
	return ann
}

// parseDirective decodes a //shieldlint: comment into the analyzer
// names it suppresses. Non-suppressing directives (such as
// //shieldlint:atomic, consumed by the atomiccounter analyzer itself)
// return ok=false.
func parseDirective(text string) (names []string, ok bool) {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimSpace(text)
	rest, found := strings.CutPrefix(text, "shieldlint:")
	if !found {
		return nil, false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, false
	}
	switch fields[0] {
	case "wallclock":
		return []string{"determinism"}, true
	case "ignore":
		if len(fields) < 2 {
			return nil, false
		}
		return strings.Split(fields[1], ","), true
	}
	return nil, false
}

func (a *annotations) suppresses(analyzer string, pos token.Position) bool {
	if set := a.file[pos.Filename]; set[analyzer] || set["all"] {
		return true
	}
	if set := a.line[pos.Filename][pos.Line]; set[analyzer] || set["all"] {
		return true
	}
	return false
}

// calleeOf resolves the function or method a call expression invokes —
// including explicitly instantiated generic calls f[T](...) — or nil
// for calls through function-typed values and type conversions.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	return staticCallee(info, call)
}

// baseVar resolves the variable an lvalue-ish expression ultimately
// denotes, unwrapping parentheses and index expressions: s.m, s.m[i]
// and (s.m) all resolve to field m.
func baseVar(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			v, _ := info.Uses[x.Sel].(*types.Var)
			return v
		case *ast.Ident:
			v, _ := info.Uses[x].(*types.Var)
			return v
		default:
			return nil
		}
	}
}

// isNamed reports whether t is the named type pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}
