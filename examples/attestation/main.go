// Attestation and sealing: the paper's Key Issues 13 and 27. Instead of
// baking plaintext credentials into NF container images, the operator
// seals them to the eUDM enclave's measurement and releases them only
// after verifying a hardware-rooted attestation quote — so a stolen image
// (or a tampered one) yields nothing.
package main

import (
	"context"
	"errors"
	"fmt"
	"os"

	"shield5g"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "attestation: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()
	tb, err := shield5g.NewTestbed(ctx, shield5g.SliceConfig{Isolation: shield5g.SGX, Seed: 11})
	if err != nil {
		return err
	}
	defer tb.Close()

	eudm := tb.Slice.Modules[shield5g.EUDM].Enclave()
	eausf := tb.Slice.Modules[shield5g.EAUSF].Enclave()

	// 1. Remote attestation: the enclave proves its identity to the
	//    operator's provisioning service.
	var reportData [64]byte
	copy(reportData[:], "operator-provisioning-nonce-1")
	quote, err := eudm.GenerateQuote(reportData)
	if err != nil {
		return err
	}
	expected := eudm.Measurement()
	if err := shield5g.VerifyQuote(tb.Slice.Platform.QuotingPublicKey(), quote, &expected); err != nil {
		return fmt.Errorf("quote verification: %w", err)
	}
	fmt.Printf("attestation verified: enclave %q measurement %x...\n",
		quote.Report.EnclaveName, quote.Report.Measurement[:8])

	// A tampered quote must not verify.
	forged := *quote
	forged.Report.EnclaveName = "evil-module"
	if err := shield5g.VerifyQuote(tb.Slice.Platform.QuotingPublicKey(), &forged, &expected); err == nil {
		return errors.New("forged quote verified")
	}
	fmt.Println("forged quote rejected: signature does not cover the tampered report")

	// 2. Secret sealing: the home-network private key is sealed to the
	//    verified enclave identity and shipped with the image.
	secret := tb.Slice.HomeNetworkKey.Bytes()
	sealed, err := eudm.Seal(secret, []byte("hn-key-v1"))
	if err != nil {
		return err
	}
	fmt.Printf("home-network key sealed to eUDM measurement (%d-byte blob)\n", len(sealed))

	// Only the same enclave identity can unseal.
	plain, err := eudm.Unseal(sealed, []byte("hn-key-v1"))
	if err != nil {
		return err
	}
	fmt.Printf("eUDM unsealed the key: %d bytes recovered\n", len(plain))

	if _, err := eausf.Unseal(sealed, []byte("hn-key-v1")); !errors.Is(err, shield5g.ErrUnseal) {
		return fmt.Errorf("eAUSF unseal should fail with ErrUnseal, got %v", err)
	}
	fmt.Println("eAUSF (different measurement) cannot unseal: KI 27 mitigated")
	return nil
}
