package udm

import (
	"bytes"
	"context"
	"crypto/rand"
	"errors"
	"testing"

	"shield5g/internal/costmodel"
	"shield5g/internal/crypto/milenage"
	"shield5g/internal/crypto/suci"
	"shield5g/internal/nf/nrf"
	"shield5g/internal/nf/udr"
	"shield5g/internal/paka"
	"shield5g/internal/sbi"
)

var (
	testK   = bytes.Repeat([]byte{0x46}, 16)
	testSNN = "5G:mnc001.mcc001.3gppnetwork.org"
)

type harness struct {
	env    *costmodel.Env
	udm    *UDM
	nrf    *nrf.NRF
	client *Client
	hnKey  *suci.HomeNetworkKey
	mono   *paka.MonolithicUDM
	udrc   *udr.Client
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	env := costmodel.NewEnv(nil, 1, nil)
	reg := sbi.NewRegistry()
	n, err := nrf.New(env, reg)
	if err != nil {
		t.Fatalf("nrf.New: %v", err)
	}
	if _, err := udr.New(env, reg); err != nil {
		t.Fatalf("udr.New: %v", err)
	}
	hnKey, err := suci.GenerateHomeNetworkKey(rand.Reader, 1)
	if err != nil {
		t.Fatalf("GenerateHomeNetworkKey: %v", err)
	}
	mono := paka.NewMonolithicUDM(env)
	invoker := sbi.NewClient("udm", env, reg)
	u, err := New(context.Background(), Config{
		Env: env, Registry: reg, Invoker: invoker,
		Functions: mono, HomeNetworkKey: hnKey, HMEE: false,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return &harness{
		env:    env,
		udm:    u,
		nrf:    n,
		client: NewClient(sbi.NewClient("ausf", env, reg)),
		hnKey:  hnKey,
		mono:   mono,
		udrc:   udr.NewClient(sbi.NewClient("test", env, reg)),
	}
}

func (h *harness) provision(t *testing.T, supi suci.SUPI) {
	t.Helper()
	opc, err := milenage.ComputeOPc(testK, make([]byte, 16))
	if err != nil {
		t.Fatalf("ComputeOPc: %v", err)
	}
	if err := h.udrc.Provision(context.Background(), udr.Subscriber{
		SUPI: supi.String(), K: testK, OPc: opc,
		SQN: make([]byte, 6), AMFField: []byte{0x80, 0x00},
	}); err != nil {
		t.Fatalf("udr provision: %v", err)
	}
	h.mono.ProvisionSubscriber(supi.String(), testK)
}

func TestNewValidation(t *testing.T) {
	env := costmodel.NewEnv(nil, 1, nil)
	reg := sbi.NewRegistry()
	if _, err := New(context.Background(), Config{Registry: reg}); err == nil {
		t.Fatal("missing env accepted")
	}
	inv := sbi.NewClient("udm", env, reg)
	if _, err := New(context.Background(), Config{Env: env, Registry: reg, Invoker: inv}); err == nil {
		t.Fatal("missing functions accepted")
	}
	if _, err := New(context.Background(), Config{Env: env, Registry: reg, Invoker: inv, Functions: paka.NewMonolithicUDM(env)}); err == nil {
		t.Fatal("missing home network key accepted")
	}
}

func TestNewRegistersWithNRF(t *testing.T) {
	h := newHarness(t)
	if h.nrf.InstanceCount() != 1 {
		t.Fatalf("NRF instances = %d, want 1", h.nrf.InstanceCount())
	}
}

func TestGenerateAuthDataFromSUCI(t *testing.T) {
	h := newHarness(t)
	supi := suci.SUPI{MCC: "001", MNC: "01", MSIN: "0000000001"}
	h.provision(t, supi)

	concealed, err := suci.Conceal(rand.Reader, supi, "0000", h.hnKey.PublicKey(), h.hnKey.ID)
	if err != nil {
		t.Fatalf("Conceal: %v", err)
	}
	resp, err := h.client.GenerateAuthData(context.Background(), &GenerateAuthDataRequest{
		SUCI: concealed, ServingNetworkName: testSNN,
	})
	if err != nil {
		t.Fatalf("GenerateAuthData: %v", err)
	}
	if resp.SUPI != supi.String() {
		t.Fatalf("SUPI = %s, want %s", resp.SUPI, supi.String())
	}
	if len(resp.RAND) != 16 || len(resp.AUTN) != 16 || len(resp.XRESStar) != 16 || len(resp.KAUSF) != 32 {
		t.Fatal("HE AV sizes wrong")
	}
}

func TestGenerateAuthDataFreshRAND(t *testing.T) {
	h := newHarness(t)
	supi := suci.SUPI{MCC: "001", MNC: "01", MSIN: "0000000001"}
	h.provision(t, supi)
	a, err := h.client.GenerateAuthData(context.Background(), &GenerateAuthDataRequest{SUPI: supi.String(), ServingNetworkName: testSNN})
	if err != nil {
		t.Fatalf("GenerateAuthData: %v", err)
	}
	b, err := h.client.GenerateAuthData(context.Background(), &GenerateAuthDataRequest{SUPI: supi.String(), ServingNetworkName: testSNN})
	if err != nil {
		t.Fatalf("GenerateAuthData: %v", err)
	}
	if bytes.Equal(a.RAND, b.RAND) {
		t.Fatal("two vectors share a RAND")
	}
	if bytes.Equal(a.AUTN, b.AUTN) {
		t.Fatal("two vectors share an AUTN (SQN not advancing)")
	}
}

func TestGenerateAuthDataValidation(t *testing.T) {
	h := newHarness(t)
	ctx := context.Background()
	var pd *sbi.ProblemDetails
	if _, err := h.client.GenerateAuthData(ctx, &GenerateAuthDataRequest{ServingNetworkName: testSNN}); !errors.As(err, &pd) || pd.Status != 400 {
		t.Fatalf("no identity err = %v, want 400", err)
	}
	if _, err := h.client.GenerateAuthData(ctx, &GenerateAuthDataRequest{SUPI: "imsi-001010000000001"}); !errors.As(err, &pd) || pd.Status != 400 {
		t.Fatalf("no SNN err = %v, want 400", err)
	}
	if _, err := h.client.GenerateAuthData(ctx, &GenerateAuthDataRequest{SUPI: "imsi-unknown", ServingNetworkName: testSNN}); err == nil {
		t.Fatal("unknown SUPI accepted")
	}
}

func TestGenerateAuthDataRejectsTamperedSUCI(t *testing.T) {
	h := newHarness(t)
	supi := suci.SUPI{MCC: "001", MNC: "01", MSIN: "0000000001"}
	h.provision(t, supi)
	concealed, err := suci.Conceal(rand.Reader, supi, "0000", h.hnKey.PublicKey(), h.hnKey.ID)
	if err != nil {
		t.Fatalf("Conceal: %v", err)
	}
	concealed.SchemeOutput[40] ^= 1
	_, err = h.client.GenerateAuthData(context.Background(), &GenerateAuthDataRequest{
		SUCI: concealed, ServingNetworkName: testSNN,
	})
	var pd *sbi.ProblemDetails
	if !errors.As(err, &pd) || pd.Status != 403 {
		t.Fatalf("tampered SUCI err = %v, want 403", err)
	}
}

func TestResyncFlow(t *testing.T) {
	h := newHarness(t)
	supi := suci.SUPI{MCC: "001", MNC: "01", MSIN: "0000000001"}
	h.provision(t, supi)

	// Build a valid AUTS for SQN_MS well ahead of the network.
	opc, err := milenage.ComputeOPc(testK, make([]byte, 16))
	if err != nil {
		t.Fatalf("ComputeOPc: %v", err)
	}
	mil, err := milenage.New(testK, opc)
	if err != nil {
		t.Fatalf("milenage.New: %v", err)
	}
	randBytes := bytes.Repeat([]byte{0x5c}, 16)
	sqnMS := []byte{0, 0, 0, 2, 0, 0}
	akStar, err := mil.F5Star(randBytes)
	if err != nil {
		t.Fatalf("F5Star: %v", err)
	}
	concealed := make([]byte, 6)
	for i := range concealed {
		concealed[i] = sqnMS[i] ^ akStar[i]
	}
	macS, err := mil.F1Star(randBytes, sqnMS, []byte{0, 0})
	if err != nil {
		t.Fatalf("F1Star: %v", err)
	}
	auts := append(concealed, macS...)

	if err := h.client.Resync(context.Background(), &ResyncRequest{
		SUPI: supi.String(), RAND: randBytes, AUTS: auts,
	}); err != nil {
		t.Fatalf("Resync: %v", err)
	}

	// The next vector must carry an SQN above the UE's.
	sub, err := h.udrc.Get(context.Background(), supi.String())
	if err != nil {
		t.Fatalf("udr.Get: %v", err)
	}
	if !bytes.Equal(sub.SQN[:3], []byte{0, 0, 0}) && sub.SQN[3] < 2 {
		t.Fatalf("SQN not rebased: %x", sub.SQN)
	}

	// A corrupted AUTS is rejected.
	auts[13] ^= 1
	err = h.client.Resync(context.Background(), &ResyncRequest{SUPI: supi.String(), RAND: randBytes, AUTS: auts})
	var pd *sbi.ProblemDetails
	if !errors.As(err, &pd) || pd.Status != 403 {
		t.Fatalf("bad AUTS err = %v, want 403", err)
	}
}
