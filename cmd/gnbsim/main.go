// Command gnbsim drives mass UE registrations against a freshly deployed
// slice, the way the paper uses the gNBSIM RAN entity for its large-scale
// measurements.
//
// Usage:
//
//	gnbsim [-n 100] [-parallel 1] [-isolation sgx|container|monolithic] [-seed N]
//	       [-chaos RATE] [-retries N] [-batch N] [-avpool N] [-switchless]
//	       [-shards N] [-shardsize K]
//	       [-storm FACTOR] [-limiter]
//	       [-cpuprofile FILE] [-memprofile FILE]
//
// -chaos enables the deterministic fault injector at the given total
// per-request fault rate (e.g. 0.1 injects a fault on 10% of SBI
// requests), and -retries bounds the full-registration attempts per UE
// (default 5 when chaos is on). -batch runs each worker's module
// requests over keep-alive sessions of the given depth, and -avpool
// enables the UDM's authentication-vector precomputation pool with the
// given per-SUPI ring depth — the two boundary-amortization mechanisms.
// -shards deploys the core as that many vertical replica slices
// (AMF+AUSF+UDM+P-AKA per shard) behind SUPI-affinity consistent-hash
// routing, and -shardsize caps how many of them this gNB's shuffle shard
// may use (0 = all). The run then reports per-shard lane statistics and
// the fleet makespan throughput next to the shared-clock figure.
// -cpuprofile and -memprofile write pprof profiles of the run for
// `go tool pprof`; the memory profile is an allocs profile taken after a
// final GC, covering every allocation of the run.
//
// -storm switches from the closed-loop mass driver to the open-loop
// signaling-storm replay: -n arrivals are offered at FACTOR times the
// core's modelled service rate (mix 5% emergency / 60% re-attach / 35%
// fresh attach), and -limiter arms the TS 29.500-style overload-control
// machinery (bounded-queue shedding, priority admission at the AMF,
// client-side throttling) for the comparison's "on" arm.
package main

import (
	"context"
	"crypto/rand"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"shield5g"
)

func main() {
	os.Exit(run())
}

func run() int {
	n := flag.Int("n", 100, "number of UEs to register")
	parallel := flag.Int("parallel", 1, "concurrent registration workers (1 = sequential, deterministic)")
	isolation := flag.String("isolation", "sgx", "AKA isolation: monolithic, container or sgx")
	seed := flag.Uint64("seed", 1, "jitter seed")
	chaosRate := flag.Float64("chaos", 0, "total per-request fault-injection rate (0 disables)")
	retries := flag.Int("retries", 0, "max registration attempts per UE (0 = 1, or 5 when -chaos is set)")
	batch := flag.Int("batch", 0, "keep-alive session depth: module requests per connection (0 = one connection per request)")
	avpool := flag.Int("avpool", 0, "UDM AV precomputation pool depth per SUPI (0 disables)")
	switchless := flag.Bool("switchless", false, "deploy the P-AKA modules with the switchless ECALL submission ring and route module requests through it (sgx only)")
	shards := flag.Int("shards", 1, "core replica count: vertical AMF+AUSF+UDM+P-AKA slices behind SUPI-affinity routing (1 = singleton core)")
	shardSize := flag.Int("shardsize", 0, "shuffle-shard width: replicas this gNB's tenant may route to (0 = all)")
	stormFactor := flag.Float64("storm", 0, "signaling-storm overload factor: offer arrivals at this multiple of the core's service rate (0 disables)")
	limiter := flag.Bool("limiter", false, "arm the overload-control limiter (bounded-queue shedding, priority admission, client throttling) during a -storm run")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write an allocs profile of the run to this file")
	flag.Parse()

	iso, err := parseIsolation(*isolation)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gnbsim: %v\n", err)
		return 2
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gnbsim: -cpuprofile: %v\n", err)
			return 2
		}
		defer func() { _ = f.Close() }()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "gnbsim: start CPU profile: %v\n", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "gnbsim: -memprofile: %v\n", err)
				return
			}
			defer func() { _ = f.Close() }()
			// Flush pending profile records so the written profile covers
			// the whole run.
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "gnbsim: write allocs profile: %v\n", err)
			}
		}()
	}
	if *chaosRate < 0 || *chaosRate > 1 {
		fmt.Fprintf(os.Stderr, "gnbsim: -chaos rate %v outside [0, 1]\n", *chaosRate)
		return 2
	}
	maxAttempts := *retries
	if maxAttempts <= 0 {
		maxAttempts = 1
		if *chaosRate > 0 {
			maxAttempts = 5
		}
	}

	if *batch < 0 || *avpool < 0 {
		fmt.Fprintf(os.Stderr, "gnbsim: -batch and -avpool must be >= 0\n")
		return 2
	}

	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "gnbsim: -shards must be >= 1\n")
		return 2
	}
	if *shardSize < 0 || (*shardSize > *shards) {
		fmt.Fprintf(os.Stderr, "gnbsim: -shardsize must be in [0, shards]\n")
		return 2
	}

	if *stormFactor < 0 {
		fmt.Fprintf(os.Stderr, "gnbsim: -storm factor must be >= 0\n")
		return 2
	}
	if *limiter && *stormFactor == 0 {
		fmt.Fprintf(os.Stderr, "gnbsim: -limiter needs a -storm run\n")
		return 2
	}

	if *switchless && iso != shield5g.SGX {
		fmt.Fprintf(os.Stderr, "gnbsim: -switchless needs -isolation sgx\n")
		return 2
	}

	sliceCfg := shield5g.SliceConfig{
		Isolation: iso, Seed: *seed, AVPoolDepth: *avpool,
		Replicas: *shards, ShardSize: *shardSize,
		Switchless: *switchless,
	}
	if *chaosRate > 0 {
		// The decision seed is derived from -seed so one flag reproduces
		// both the cost draws and the fault schedule.
		mix := shield5g.DefaultChaosMix(*seed+101, *chaosRate)
		sliceCfg.Chaos = &mix
	}
	if *stormFactor > 0 {
		// The zero profile is the "limiter off" baseline: servers sense
		// load and queue but never reject.
		profile := &shield5g.OverloadProfile{}
		if *limiter {
			acfg := shield5g.DefaultAdmissionConfig()
			profile = &shield5g.OverloadProfile{Shed: true, Admission: &acfg, Throttle: true}
		}
		sliceCfg.Overload = profile
	}

	ctx := context.Background()
	//shieldlint:wallclock CLI reports real deploy latency to the operator
	start := time.Now()
	tb, err := shield5g.NewTestbed(ctx, sliceCfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gnbsim: deploy: %v\n", err)
		return 1
	}
	defer tb.Close()
	//shieldlint:wallclock CLI reports real deploy latency to the operator
	fmt.Printf("slice deployed (%s isolation) in %v wall time\n", iso, time.Since(start).Round(time.Millisecond))
	if iso == shield5g.SGX {
		for _, kind := range []shield5g.ModuleKind{shield5g.EUDM, shield5g.EAUSF, shield5g.EAMF} {
			m := tb.Slice.Modules[kind]
			fmt.Printf("  %s enclave load: %v (virtual)\n", kind, m.LoadDuration().Round(time.Millisecond))
		}
	}

	if *stormFactor > 0 {
		return runStorm(ctx, tb, *n, *stormFactor, *limiter, *seed)
	}

	result, err := tb.Slice.GNB.RegisterManyWith(ctx, shield5g.MassOptions{
		N: *n,
		NewUE: func(i int) (*shield5g.UE, error) {
			k := make([]byte, 16)
			if _, err := rand.Read(k); err != nil {
				return nil, fmt.Errorf("entropy: %w", err)
			}
			sub, err := tb.AddSubscriber(ctx, k, nil)
			if err != nil {
				return nil, err
			}
			return sub.UE, nil
		},
		Parallelism: *parallel,
		MaxAttempts: maxAttempts,
		Chaos:       tb.Slice.Chaos,
		BatchSize:   *batch,
		Switchless:  *switchless,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "gnbsim: %v\n", err)
		return 1
	}

	fmt.Printf("registered %d/%d UEs (%d failed) with %d worker(s)\n",
		result.Registered, *n, result.Failed, result.Parallelism)
	if *chaosRate > 0 {
		fmt.Printf("chaos: rate %.2f, %d attempts total, injected %v\n",
			*chaosRate, result.Attempts, tb.Slice.Chaos.Counts())
		if len(result.Recovered) > 0 {
			classes := make([]string, 0, len(result.Recovered))
			for class := range result.Recovered {
				classes = append(classes, class)
			}
			sort.Strings(classes)
			for _, class := range classes {
				fmt.Printf("chaos: recovered %d failed attempt(s) [%s] via retry\n",
					result.Recovered[class], class)
			}
		}
		var restarts uint64
		for _, m := range tb.Slice.Modules {
			restarts += m.Restarts()
		}
		if restarts > 0 {
			fmt.Printf("chaos: %d module crash/redeploy cycle(s) survived (re-load + re-attest)\n", restarts)
		}
	}
	if *avpool > 0 {
		// The fleet view sums every replica's pool without double counting.
		pool := tb.Slice.AVPoolStats()
		fmt.Printf("av pool: %d hits, %d misses, %d refills, %d banked vectors\n",
			pool.Hits, pool.Misses, pool.Refills, pool.Pooled)
	}
	if *switchless {
		for _, shard := range tb.Slice.Shards {
			for _, kind := range []shield5g.ModuleKind{shield5g.EUDM, shield5g.EAUSF, shield5g.EAMF} {
				m, ok := shard.Modules[kind]
				if !ok {
					continue
				}
				rs := m.RingStats()
				fmt.Printf("ring %s: %d submitted, %d completed, %d doorbells, %d parks\n",
					m.ServiceName(), rs.Submitted, rs.Completed, rs.Doorbells, rs.Parks)
			}
		}
	}
	if result.Registered > 0 {
		sum := result.SetupTimes.Summarize()
		fmt.Printf("session setup: median %v mean %v (virtual)\n",
			sum.Median.Round(time.Microsecond), sum.Mean.Round(time.Microsecond))
		fmt.Printf("throughput: %.0f regs/s wall, %.1f regs/s virtual (wall %v, virtual %v)\n",
			result.WallRegsPerSec, result.VirtualRegsPerSec,
			result.Wall.Round(time.Millisecond), result.Virtual.Round(time.Millisecond))
	}
	if len(result.ShardStats) > 1 {
		fmt.Printf("fleet: %.1f regs/s over makespan %v (busiest lane; epoch %d)\n",
			result.FleetVirtualRegsPerSec, result.FleetVirtual.Round(time.Millisecond),
			tb.Slice.Router.Epoch())
		for i, st := range result.ShardStats {
			fmt.Printf("  shard %d (%s): %d ok, %d failed, busy %v\n",
				i, tb.Slice.Shards[i].Name, st.Registered, st.Failed,
				st.Busy.Round(time.Millisecond))
		}
	}
	if result.Failed > 0 {
		classes := make([]string, 0, len(result.FailureCounts))
		for class := range result.FailureCounts {
			classes = append(classes, class)
		}
		sort.Strings(classes)
		for _, class := range classes {
			fmt.Fprintf(os.Stderr, "gnbsim: %d failure(s) [%s], first: %v\n",
				result.FailureCounts[class], class, result.FirstErrors[class])
		}
		return 1
	}
	return 0
}

// stormBottleneckCycles mirrors the UDM's modelled per-request service
// cost — the drain rate of the chain's slowest virtual queue. The -storm
// factor is expressed against it: arrival spacing = bottleneck / factor.
const stormBottleneckCycles = 3_600_000

// runStorm replays a seeded signaling storm (open-loop arrivals) against
// the deployed slice: the re-attach population registers once before the
// storm so it holds GUTIs, emergency devices are flagged, and the
// overload machinery is armed only for the replay itself.
func runStorm(ctx context.Context, tb *shield5g.Testbed, n int, factor float64, limiter bool, seed uint64) int {
	// The plan seed is derived from -seed so one flag reproduces both the
	// cost draws and the arrival schedule.
	plan, err := shield5g.NewStormPlan(seed+43, shield5g.StormSpec{
		N:             n,
		EmergencyFrac: 0.05,
		ReattachFrac:  0.60,
		Spacing:       shield5g.Cycles(float64(stormBottleneckCycles) / factor),
		JitterFrac:    0.2,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "gnbsim: storm plan: %v\n", err)
		return 1
	}

	devices := make(map[shield5g.Priority][]*shield5g.UE)
	for _, ev := range plan.Events {
		k := make([]byte, 16)
		if _, err := rand.Read(k); err != nil {
			fmt.Fprintf(os.Stderr, "gnbsim: entropy: %v\n", err)
			return 1
		}
		sub, err := tb.AddSubscriber(ctx, k, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gnbsim: provision: %v\n", err)
			return 1
		}
		device := sub.UE
		switch ev.Class {
		case shield5g.PriorityEmergency:
			device.SetEmergency(true)
		case shield5g.PriorityReattach:
			if _, err := tb.Slice.GNB.RegisterUE(ctx, device); err != nil {
				fmt.Fprintf(os.Stderr, "gnbsim: pre-register re-attach device: %v\n", err)
				return 1
			}
		}
		devices[ev.Class] = append(devices[ev.Class], device)
	}

	next := make(map[shield5g.Priority]int)
	tb.Slice.SetOverloadArmed(true)
	res, err := tb.Slice.GNB.RunStorm(ctx, shield5g.StormOptions{
		Plan: plan,
		Device: func(ev shield5g.StormEvent) (*shield5g.UE, error) {
			i := next[ev.Class]
			next[ev.Class]++
			return devices[ev.Class][i], nil
		},
		Source: "gnb-1",
	})
	tb.Slice.SetOverloadArmed(false)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gnbsim: storm: %v\n", err)
		return 1
	}

	fmt.Printf("storm: %d arrivals at %.0fx overload, limiter %v (window %v, makespan %v virtual)\n",
		n, factor, limiter, res.Window.Round(100*time.Microsecond), res.Makespan.Round(100*time.Microsecond))
	fmt.Printf("%-10s %6s %6s %6s %6s %10s %10s %10s\n",
		"class", "offer", "ok", "shed", "fail", "goodput/s", "p99", "makespan")
	for c := len(res.Class) - 1; c >= 0; c-- {
		cr := res.Class[c]
		sum := cr.SetupTimes.Summarize()
		fmt.Printf("%-10s %6d %6d %6d %6d %10.1f %10s %10s\n",
			shield5g.Priority(c).String(), cr.Offered, cr.Registered, cr.Shed, cr.Failed,
			cr.GoodputPerSec, sum.P99.Round(10*time.Microsecond),
			cr.Makespan.Round(100*time.Microsecond))
	}
	if tb.Slice.Admission != nil {
		fmt.Printf("admission: %d dropped at the AMF's priority buckets\n",
			tb.Slice.Admission.Stats().TotalDropped())
	}
	var sheds uint64
	for _, st := range tb.Slice.OverloadStats() {
		sheds += st.TotalShed()
	}
	rs := tb.Slice.ResilienceStats()
	fmt.Printf("overload: %d server sheds, %d client throttles, %d retries, %d breaker opens\n",
		sheds, rs.Throttled, rs.Retries, rs.Breaker.Opens)
	return 0
}

func parseIsolation(s string) (shield5g.Isolation, error) {
	switch s {
	case "monolithic":
		return shield5g.Monolithic, nil
	case "container":
		return shield5g.Container, nil
	case "sgx":
		return shield5g.SGX, nil
	default:
		return 0, fmt.Errorf("unknown isolation %q", s)
	}
}
