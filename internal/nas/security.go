package nas

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"shield5g/internal/crypto/hashpool"
	"shield5g/internal/crypto/kdf"
)

// NAS security algorithm identifiers (TS 33.501 §5.11.1). This simulation
// implements the "2" algorithms with stdlib primitives: AES-CTR ciphering
// for 128-NEA2 and an HMAC-SHA-256/32 tag standing in for 128-NIA2's
// AES-CMAC (same key schedule and interface, equivalent forgery
// resistance at the 32-bit tag length).
const (
	AlgNEA0 byte = 0x0 // null ciphering
	AlgNEA2 byte = 0x2
	AlgNIA2 byte = 0x2
)

// macLen is the NAS message authentication code length (TS 24.501 §9.8).
const macLen = 4

// Security errors.
var (
	// ErrIntegrity reports a NAS MAC verification failure.
	ErrIntegrity = errors.New("nas: integrity check failed")
	// ErrReplay reports a NAS sequence number at or behind the receive
	// window.
	ErrReplay = errors.New("nas: replayed or stale sequence number")
)

// Direction of a protected message.
const (
	dirUplink   byte = 0
	dirDownlink byte = 1
)

// SecurityContext holds one activated NAS security association. Create one
// on each side from the shared K_AMF after a successful AKA run. It is not
// safe for concurrent use; NAS signalling per UE is sequential.
type SecurityContext struct {
	// encKey and intKey are in-struct arrays (not slices) so key
	// derivation into an activated context costs no allocations beyond
	// the context itself.
	encKey [kdf.KeyLen128]byte
	intKey [kdf.KeyLen128]byte

	// block is the AES key schedule for K_NASenc, expanded once at context
	// activation: the keys are fixed for the context's lifetime, so per-
	// message aes.NewCipher calls were pure overhead. macState is likewise
	// the context-owned HMAC state for K_NASint; macBuf and hdrBuf are its
	// reusable output and header scratch (single-threaded per context, see
	// above).
	block    cipher.Block
	macState *hashpool.HMAC
	macBuf   [sha256.Size]byte
	hdrBuf   [5]byte
	// ctrIV and ctrKS are the counter block and keystream scratch of
	// xorKeyStream; fields so the interface call block.Encrypt does not
	// heap-allocate them per message.
	ctrIV [aes.BlockSize]byte
	ctrKS [aes.BlockSize]byte

	IntegrityAlg byte
	CipheringAlg byte

	uplinkCount   uint32
	downlinkCount uint32
}

// NewSecurityContext derives the NAS protection keys from K_AMF
// (TS 33.501 Annex A.8).
func NewSecurityContext(kamf []byte) (*SecurityContext, error) {
	sc := &SecurityContext{
		IntegrityAlg: AlgNIA2,
		CipheringAlg: AlgNEA2,
	}
	if err := kdf.AlgorithmKeyInto(sc.encKey[:], kamf, kdf.AlgoNASEncryption, AlgNEA2); err != nil {
		return nil, fmt.Errorf("nas: derive K_NASenc: %w", err)
	}
	if err := kdf.AlgorithmKeyInto(sc.intKey[:], kamf, kdf.AlgoNASIntegrity, AlgNIA2); err != nil {
		return nil, fmt.Errorf("nas: derive K_NASint: %w", err)
	}
	block, err := aes.NewCipher(sc.encKey[:])
	if err != nil {
		return nil, fmt.Errorf("nas: cipher setup: %w", err)
	}
	sc.block = block
	sc.macState = hashpool.NewHMAC(sc.intKey[:])
	return sc, nil
}

// Counts reports the current uplink and downlink NAS COUNT values.
func (sc *SecurityContext) Counts() (uplink, downlink uint32) {
	return sc.uplinkCount, sc.downlinkCount
}

// plainPool recycles the plaintext scratch of Protect (the pre-encryption
// encoding) and Unprotect (the deciphered payload). Both uses end inside
// the call — the ciphertext is written elsewhere and Decode copies every
// field out — so the buffer never escapes.
var plainPool = sync.Pool{New: func() any {
	b := make([]byte, 0, encodeCap)
	return &b
}}

// Protect encodes msg and wraps it as an integrity-protected and ciphered
// NAS message for the given direction, consuming one sequence number.
//
// Wire format: EPD || SHT || MAC[4] || SEQ[4] || ciphertext.
//
//shieldlint:hotpath
func (sc *SecurityContext) Protect(msg Message, uplink bool) ([]byte, error) {
	pb := plainPool.Get().(*[]byte)
	plain, err := appendEncode((*pb)[:0], msg)
	if err != nil {
		plainPool.Put(pb)
		return nil, err
	}
	dir, count := sc.sendState(uplink)

	// Single output allocation: the ciphertext is written straight into
	// its final position, then MAC and SEQ fill the header in place.
	//shieldlint:ignore hotalloc single caller-owned output per protected message
	out := make([]byte, 2+macLen+4+len(plain))
	out[0], out[1] = EPD5GMM, shtProtected
	ct := out[2+macLen+4:]
	sc.xorKeyStream(ct, plain, dir, count)
	copy(out[2:2+macLen], sc.mac(dir, count, ct))
	binary.BigEndian.PutUint32(out[2+macLen:2+macLen+4], count)
	*pb = plain
	plainPool.Put(pb)

	sc.advanceSend(uplink)
	return out, nil
}

// Unprotect verifies and deciphers a protected NAS message from the given
// direction (uplink=true means the receiver is the network side).
//
//shieldlint:hotpath
func (sc *SecurityContext) Unprotect(data []byte, uplink bool) (Message, error) {
	if len(data) < 2+macLen+4 {
		return nil, fmt.Errorf("%w: protected header", ErrTruncated)
	}
	if data[0] != EPD5GMM {
		return nil, fmt.Errorf("%w: 0x%02X", ErrBadDiscriminator, data[0])
	}
	if data[1] != shtProtected {
		return nil, fmt.Errorf("nas: security header type %d, want %d", data[1], shtProtected)
	}
	mac := data[2 : 2+macLen]
	count := binary.BigEndian.Uint32(data[2+macLen : 2+macLen+4])
	ct := data[2+macLen+4:]

	dir := dirDownlink
	expect := &sc.downlinkCount
	if uplink {
		dir = dirUplink
		expect = &sc.uplinkCount
	}
	if count < *expect {
		return nil, fmt.Errorf("%w: got %d, expect >= %d", ErrReplay, count, *expect)
	}
	if !hmac.Equal(mac, sc.mac(dir, count, ct)) {
		return nil, ErrIntegrity
	}

	pb := plainPool.Get().(*[]byte)
	if cap(*pb) < len(ct) {
		//shieldlint:ignore hotalloc pool grow, amortised across the pool entry's lifetime
		*pb = make([]byte, len(ct))
	}
	plain := (*pb)[:len(ct)]
	sc.xorKeyStream(plain, ct, dir, count)
	msg, err := Decode(plain)
	plainPool.Put(pb)
	if err != nil {
		return nil, fmt.Errorf("nas: deciphered payload: %w", err)
	}
	*expect = count + 1
	return msg, nil
}

func (sc *SecurityContext) sendState(uplink bool) (byte, uint32) {
	if uplink {
		return dirUplink, sc.uplinkCount
	}
	return dirDownlink, sc.downlinkCount
}

func (sc *SecurityContext) advanceSend(uplink bool) {
	if uplink {
		sc.uplinkCount++
	} else {
		sc.downlinkCount++
	}
}

// xorKeyStream applies the NEA2-style AES-CTR keystream for
// (direction, count) to src, writing into dst (dst and src may alias).
// It is bit-identical to cipher.NewCTR over the same initial counter
// block — the counter is incremented big-endian across all 16 bytes —
// but reuses the context's scratch instead of allocating a stream state
// per message.
//
//shieldlint:hotpath
func (sc *SecurityContext) xorKeyStream(dst, src []byte, dir byte, count uint32) {
	iv := sc.ctrIV[:]
	clear(iv)
	binary.BigEndian.PutUint32(iv[0:4], count)
	iv[4] = dir << 2 // bearer(0) || direction, per the NEA IV layout
	ks := sc.ctrKS[:]
	for len(src) > 0 {
		sc.block.Encrypt(ks, iv)
		n := subtle.XORBytes(dst, src, ks)
		dst, src = dst[n:], src[n:]
		for j := aes.BlockSize - 1; j >= 0; j-- {
			iv[j]++
			if iv[j] != 0 {
				break
			}
		}
	}
}

// mac computes the 32-bit NAS MAC over (direction, count, payload). The
// returned slice aliases sc.macBuf and is only valid until the next call.
//
//shieldlint:hotpath
func (sc *SecurityContext) mac(dir byte, count uint32, payload []byte) []byte {
	binary.BigEndian.PutUint32(sc.hdrBuf[0:4], count)
	sc.hdrBuf[4] = dir
	sc.macState.Reset()
	sc.macState.Write(sc.hdrBuf[:])
	sc.macState.Write(payload)
	return sc.macState.Sum(sc.macBuf[:0])[:macLen]
}
