package analysis

// Analyzers returns the full shieldlint suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		Determinism,
		SecretFlow,
		AtomicCounter,
		CtxCarry,
		StripeMap,
		HotAlloc,
		PlaneBoundary,
		PoolOwner,
		LockOrder,
	}
}

// ByName resolves an analyzer by its directive name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
