// Command benchdiff compares two benchmark JSON reports (the
// BENCH_*.json artifacts written by `make bench`) and fails when a
// tracked metric regresses by more than the allowed fraction.
//
// Usage:
//
//	benchdiff [-max-regress 0.10] baseline.json candidate.json
//
// Reports are matched point-by-point on the "mode" field (the last point
// per mode wins: benchmark harness re-invocations append steady-state
// points after warm-up ones). Metric direction is inferred from the
// field name: latency-, allocation- and boundary-crossing-shaped fields
// are lower-is-better, throughput- and hit-shaped fields are
// higher-is-better, and anything unrecognized is reported but never
// fails the diff. Exit status: 0 clean, 1 regression, 2 usage/IO error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// lowerBetter and higherBetter classify metric fields by name fragment.
// Classification is by substring so new fields following the repo's
// naming conventions are tracked without touching this tool.
var (
	// "registered"/"attempts" are cumulative counters that scale with the
	// harness iteration count, so they are deliberately unclassified.
	lowerBetter  = []string{"ns_per_op", "wall_ms", "alloc", "byte", "transition", "miss"}
	higherBetter = []string{"regs_per_sec", "hit", "reduction", "pooled", "speedup"}
)

type metricDir int

const (
	dirUnknown metricDir = iota
	dirLower
	dirHigher
)

func classify(field string) metricDir {
	for _, f := range lowerBetter {
		if strings.Contains(field, f) {
			return dirLower
		}
	}
	for _, f := range higherBetter {
		if strings.Contains(field, f) {
			return dirHigher
		}
	}
	return dirUnknown
}

// report is the generic shape shared by every BENCH_*.json artifact: a
// list of points keyed by mode, each carrying numeric metrics.
type report struct {
	Points []map[string]any `json:"points"`
}

func load(path string) (map[string]map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Points) == 0 {
		return nil, fmt.Errorf("%s: no points[] array", path)
	}
	out := make(map[string]map[string]float64)
	for _, p := range r.Points {
		mode, _ := p["mode"].(string)
		if mode == "" {
			continue
		}
		metrics := make(map[string]float64)
		for k, v := range p {
			if f, ok := v.(float64); ok {
				metrics[k] = f
			}
		}
		// Last point per mode wins (steady state after warm-up).
		out[mode] = metrics
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no points carry a mode field", path)
	}
	return out, nil
}

func main() {
	maxRegress := flag.Float64("max-regress", 0.10, "maximum tolerated fractional regression per metric")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [-max-regress FRAC] baseline.json candidate.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	base, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	cand, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	modes := make([]string, 0, len(base))
	for m := range base {
		if _, ok := cand[m]; ok {
			modes = append(modes, m)
		}
	}
	sort.Strings(modes)
	if len(modes) == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: no common modes between reports\n")
		os.Exit(2)
	}

	regressed := 0
	for _, mode := range modes {
		b, c := base[mode], cand[mode]
		fields := make([]string, 0, len(b))
		for f := range b {
			if _, ok := c[f]; ok {
				fields = append(fields, f)
			}
		}
		sort.Strings(fields)
		for _, f := range fields {
			dir := classify(f)
			old, new := b[f], c[f]
			if old == 0 {
				// No meaningful ratio; report only.
				if old != new {
					fmt.Printf("  ?   %-20s %-24s %12.4g -> %-12.4g (no baseline)\n", mode, f, old, new)
				}
				continue
			}
			delta := (new - old) / old
			worse := (dir == dirLower && delta > *maxRegress) ||
				(dir == dirHigher && delta < -*maxRegress)
			tag := "ok "
			switch {
			case worse:
				tag = "REG"
				regressed++
			case dir == dirUnknown:
				tag = "?  "
			}
			fmt.Printf("  %s %-20s %-24s %12.4g -> %-12.4g (%+.1f%%)\n",
				tag, mode, f, old, new, 100*delta)
		}
	}

	if regressed > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d metric(s) regressed by more than %.0f%%\n",
			regressed, 100**maxRegress)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: no regression beyond %.0f%% across %d mode(s)\n", 100**maxRegress, len(modes))
}
