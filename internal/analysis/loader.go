package analysis

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one type-checked package of the analyzed program.
type Package struct {
	ImportPath string
	Dir        string
	// Standard marks a package of the Go distribution; standard
	// packages are type-checked (export data only) but never analyzed.
	Standard bool
	Fset     *token.FileSet
	Files    []*ast.File
	Types    *types.Package
	Info     *types.Info
}

// Loader type-checks packages from source using only the standard
// library: `go list -deps -json` supplies file lists, vendor import
// maps and a dependency-first order, and go/types checks each package
// against the already-checked results of its imports. Nothing beyond
// the Go toolchain itself is required, which keeps shieldlint usable in
// this module's dependency-free build environment (no x/tools).
type Loader struct {
	// Dir is the module root `go list` runs in.
	Dir  string
	fset *token.FileSet
	pkgs map[string]*types.Package
	// Fallback resolves import paths `go list` did not cover; the test
	// harness points it at fixture packages under testdata.
	Fallback func(path string) (*types.Package, error)
}

// NewLoader returns a Loader rooted at the module directory dir.
func NewLoader(dir string) *Loader {
	return &Loader{
		Dir:  dir,
		fset: token.NewFileSet(),
		pkgs: make(map[string]*types.Package),
	}
}

// ModuleRoot locates the enclosing module's root directory via the go
// command, so the linter binary works from any subdirectory.
func ModuleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("analysis: go env GOMOD: %w", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("analysis: not inside a Go module")
	}
	return filepath.Dir(gomod), nil
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Standard   bool
	GoFiles    []string
	ImportMap  map[string]string
}

// Load type-checks the packages matched by patterns plus their entire
// dependency graph and returns the matched non-standard packages in
// dependency order. Results accumulate in the loader's cache, so
// subsequent Load and CheckDir calls reuse earlier work.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-deps", "-json=ImportPath,Dir,Standard,GoFiles,ImportMap"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	// CGO is off so every package resolves to pure-Go files that
	// go/types can check from source.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	var listed []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var p listPkg
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("analysis: decode go list output: %w", err)
		}
		listed = append(listed, &p)
	}

	var targets []*Package
	for _, p := range listed {
		if p.ImportPath == "unsafe" {
			continue
		}
		if _, done := l.pkgs[p.ImportPath]; done {
			continue
		}
		pkg, err := l.check(p)
		if err != nil {
			return nil, err
		}
		if !p.Standard {
			targets = append(targets, pkg)
		}
	}
	return targets, nil
}

// CheckDir parses and type-checks the non-test .go files of a single
// directory under the given import path, resolving imports from the
// loader cache (and Fallback). It powers the fixture test harness.
//
// Files excluded by build constraints — a //go:build line that does not
// match the host GOOS/GOARCH, or an explicit //go:build ignore — are
// skipped the way `go list` skips them, instead of being fed to the
// type checker where their contents (often deliberately broken, or
// platform-specific) would fail the whole package.
func (l *Loader) CheckDir(importPath, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		ok, err := buildConstraintsSatisfied(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("analysis: %s: %w", name, err)
		}
		if !ok {
			continue
		}
		files = append(files, name)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	return l.check(&listPkg{ImportPath: importPath, Dir: dir, GoFiles: files})
}

// buildConstraintsSatisfied reports whether the file's //go:build
// constraint (if any, scanned from the lines before the package clause)
// matches the host build context. Tags considered true are the host
// GOOS/GOARCH, the gc toolchain, and every goN.M release tag up to the
// running toolchain; anything else — including the conventional
// "ignore" tag — is false.
func buildConstraintsSatisfied(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "package ") {
			break
		}
		if !constraint.IsGoBuild(line) {
			continue
		}
		expr, err := constraint.Parse(line)
		if err != nil {
			// An unparsable constraint excludes the file, matching the
			// go command's behaviour.
			return false, nil
		}
		return expr.Eval(buildTagSatisfied), nil
	}
	return true, sc.Err()
}

func buildTagSatisfied(tag string) bool {
	if tag == runtime.GOOS || tag == runtime.GOARCH || tag == "gc" {
		return true
	}
	if v, ok := strings.CutPrefix(tag, "go1."); ok {
		// Release tags: go1.N is true for every N up to the toolchain's
		// minor version.
		var minor int
		if _, err := fmt.Sscanf(v, "%d", &minor); err == nil {
			var host int
			if _, err := fmt.Sscanf(strings.TrimPrefix(runtime.Version(), "go1."), "%d", &host); err == nil {
				return minor <= host
			}
		}
	}
	return false
}

func (l *Loader) check(p *listPkg) (*Package, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		af, err := parser.ParseFile(l.fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, af)
	}

	var info *types.Info
	if !p.Standard {
		info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			// Instances records generic instantiations (f[T], G[T]) so
			// the call graph can resolve instantiated calls back to the
			// generic origin declaration.
			Instances: make(map[*ast.Ident]types.Instance),
		}
	}

	var firstErr error
	conf := types.Config{
		Importer: &mapImporter{loader: l, importMap: p.ImportMap},
		// Standard-library packages only need their export-level types;
		// skipping their function bodies keeps a full load near one
		// second for the whole module plus dependencies.
		IgnoreFuncBodies: p.Standard,
		FakeImportC:      true,
		Sizes:            types.SizesFor("gc", runtime.GOARCH),
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, _ := conf.Check(p.ImportPath, l.fset, files, info)
	if firstErr != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", p.ImportPath, firstErr)
	}
	l.pkgs[p.ImportPath] = tpkg
	return &Package{
		ImportPath: p.ImportPath,
		Dir:        p.Dir,
		Standard:   p.Standard,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// mapImporter resolves one package's imports from the loader cache,
// applying the package's vendor ImportMap first (GOROOT-vendored paths
// such as golang.org/x/net/... appear under vendor/ in go list output).
type mapImporter struct {
	loader    *Loader
	importMap map[string]string
}

var _ types.Importer = (*mapImporter)(nil)

func (m *mapImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if real, ok := m.importMap[path]; ok {
		path = real
	}
	if p, ok := m.loader.pkgs[path]; ok {
		return p, nil
	}
	if m.loader.Fallback != nil {
		return m.loader.Fallback(path)
	}
	return nil, fmt.Errorf("package %q not loaded (dependency order violated?)", path)
}
