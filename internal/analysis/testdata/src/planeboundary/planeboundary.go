// Package planeboundary exercises the planeboundary analyzer. The
// fixture's import path is outside the builder allowlist, so it stands in
// for a data-plane package: importing the NRF snapshot builder must be
// reported, importing the data-plane topology package must not.
package planeboundary

import (
	_ "shield5g/internal/nf/nrf/topo" // want "imports the NRF snapshot builder"
	_ "shield5g/internal/topology"
)
