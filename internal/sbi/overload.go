package sbi

import (
	"context"
	"math"
	"sync"
	"time"

	"shield5g/internal/costmodel"
	"shield5g/internal/sbi/codec"
	"shield5g/internal/simclock"
)

// This file implements the TS 29.500-style overload-control layer: each
// Server can run a load meter — a deterministic virtual-queue model whose
// EWMA load is advertised to clients as an Overload Control Information
// (OCI) record on every response — and each Client records the latest OCI
// per peer so the resilience layer can throttle proportionally to
// advertised load. All time is virtual: the meter runs on the request
// arrival axis stamped by open-loop drivers (simclock.WithArrival), so a
// 10x signaling storm produces the same backlog, the same sheds and the
// same Retry-After values on every run of a seed.

// CauseOverload marks a request rejected by overload control — either a
// server-side bounded-queue shed, an admission-control drop ahead of the
// enclave, or a client-side throttle. It is retryable (503) and carries
// Retry-After per TS 29.500 §6.4.
const CauseOverload = "OVERLOAD"

// Priority is the admission priority class of a registration, ordered
// least- to most-privileged. The zero value (fresh attach) is the default
// for unstamped requests.
type Priority int

// The three storm priority classes: emergency > re-registration > fresh
// attach (ROADMAP overload-control item).
const (
	PriorityFresh Priority = iota
	PriorityReattach
	PriorityEmergency
	priorityCount
)

// String names the priority class.
func (p Priority) String() string {
	switch p {
	case PriorityFresh:
		return "fresh"
	case PriorityReattach:
		return "reattach"
	case PriorityEmergency:
		return "emergency"
	default:
		return "unknown"
	}
}

type priorityKey struct{}

// WithPriority stamps ctx with the request's admission priority class; the
// class rides the whole downstream SBI chain (client throttling exempts
// emergency traffic, server meters never shed it).
func WithPriority(ctx context.Context, p Priority) context.Context {
	if existing, ok := ctx.Value(priorityKey{}).(Priority); ok && existing == p {
		return ctx
	}
	return context.WithValue(ctx, priorityKey{}, p)
}

// PriorityFrom extracts the priority class from ctx (fresh attach when
// unstamped).
func PriorityFrom(ctx context.Context) Priority {
	if p, ok := ctx.Value(priorityKey{}).(Priority); ok {
		return p
	}
	return PriorityFresh
}

// OCI is the Overload Control Information a server advertises with every
// response (the modelled `3gpp-Sbi-Oci` header of TS 29.500 §6.4): the
// EWMA load percentage, the traffic reduction the server is asking its
// clients for, and the wait it suggests before retrying shed work.
type OCI struct {
	// Load is the smoothed utilisation of the server's virtual queue,
	// 0..100.
	Load int `json:"load"`
	// Reduction is the requested traffic reduction percentage (0..90);
	// clients defer that fraction of non-emergency requests.
	Reduction int `json:"reduction,omitempty"`
	// RetryAfter is the server's current drain estimate, attached to shed
	// responses and honoured by the client backoff as a wait floor.
	RetryAfter time.Duration `json:"retryAfter,omitempty"`
	// Seq orders OCI snapshots so a stale advert never overwrites a newer
	// one (TS 29.500 timestamp semantics).
	Seq uint64 `json:"seq"`
}

// OCISource yields the most recent OCI a transport observed per peer
// service; *Client implements it and the resilience layer consumes it.
type OCISource interface {
	PeerOCI(service string) (OCI, bool)
}

// OverloadConfig tunes one server's load meter.
type OverloadConfig struct {
	// ServiceCycles is the modelled per-request service cost of this
	// server — the drain rate of its virtual queue.
	ServiceCycles simclock.Cycles
	// MaxQueue bounds the virtual queue, in requests: arrivals beyond it
	// are shed with 503 OVERLOAD (emergency traffic is exempt). Zero
	// disables shedding — the meter senses, queues and advertises load but
	// never rejects, which is the "limiter off" comparison point.
	MaxQueue int
	// TargetLoad is the EWMA load (0..1) above which the server asks
	// clients for traffic reduction. Default 0.7.
	TargetLoad float64
	// HalfLife is the EWMA smoothing half-life on the virtual arrival
	// axis. Default 20ms.
	HalfLife time.Duration
}

func (c OverloadConfig) withDefaults() OverloadConfig {
	if c.TargetLoad <= 0 || c.TargetLoad >= 1 {
		c.TargetLoad = 0.7
	}
	if c.HalfLife <= 0 {
		c.HalfLife = 20 * time.Millisecond
	}
	return c
}

// OverloadStats is a snapshot of one server meter's counters.
type OverloadStats struct {
	// Served counts admitted requests; Shed counts rejections, by class.
	Served [priorityCount]uint64
	Shed   [priorityCount]uint64
	// QueueDelay is the total virtual wait charged to admitted requests;
	// PeakQueue is the deepest queue observed, in requests.
	QueueDelay time.Duration
	PeakQueue  int
	// Load/Reduction mirror the latest advertised OCI.
	Load      int
	Reduction int
}

// TotalShed sums sheds across classes.
func (s OverloadStats) TotalShed() uint64 {
	var n uint64
	for _, v := range s.Shed {
		n += v
	}
	return n
}

// loadMeter is the per-server virtual-queue model. It is an open-loop
// queueing simulation: requests stamped with simclock.WithArrival drain
// the backlog by their inter-arrival gap and then join the queue (paying
// the work ahead of them as a virtual delay); unstamped requests join at
// the current watermark. The meter only acts while armed, so slices run
// bit-identical to the pre-overload seed until a storm window opens.
type loadMeter struct {
	env *costmodel.Env
	cfg OverloadConfig
	// bias adds external backpressure (the UDM's AV-pool miss pressure)
	// to the advertised load. May be nil.
	bias func() float64

	mu      sync.Mutex
	armed   bool
	backlog simclock.Cycles // queued virtual work not yet drained
	last    simclock.Cycles // arrival-axis watermark
	ewma    float64         // smoothed utilisation 0..1
	seq     uint64
	oci     OCI

	served     [priorityCount]uint64
	shed       [priorityCount]uint64
	queueDelay simclock.Cycles
	peakQueue  int
}

// EnableOverload attaches a load meter to the server. The meter starts
// disarmed (SetOverloadArmed opens the storm window); env provides the
// clock frequency and the account sink for queue-delay charges — it may
// differ from the server's own env (P-AKA module servers carry none).
func (s *Server) EnableOverload(env *costmodel.Env, cfg OverloadConfig) {
	if env == nil || cfg.ServiceCycles == 0 {
		return
	}
	s.mu.Lock()
	s.meter = &loadMeter{env: env, cfg: cfg.withDefaults()}
	s.mu.Unlock()
}

// SetLoadBias installs an external backpressure source added to the
// advertised load (0..1); the UDM points this at its AV-pool miss
// pressure so pool thrash shows up in the OCI before the queue saturates.
func (s *Server) SetLoadBias(bias func() float64) {
	s.mu.Lock()
	if s.meter != nil {
		s.meter.mu.Lock()
		s.meter.bias = bias
		s.meter.mu.Unlock()
	}
	s.mu.Unlock()
}

// SetOverloadArmed opens or closes the meter's sensing window. Disarmed,
// the serve path is byte-identical to a server without a meter.
func (s *Server) SetOverloadArmed(v bool) {
	if m := s.loadMeter(); m != nil {
		m.mu.Lock()
		m.armed = v
		if !v {
			m.backlog, m.last, m.ewma = 0, 0, 0
		}
		m.mu.Unlock()
	}
}

// CurrentOCI reports the latest advertised OCI; ok is false when the
// server has no armed meter.
func (s *Server) CurrentOCI() (OCI, bool) {
	m := s.loadMeter()
	if m == nil {
		return OCI{}, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.armed {
		return OCI{}, false
	}
	return m.oci, true
}

// OverloadStats snapshots the meter's counters (zero when no meter).
func (s *Server) OverloadStats() OverloadStats {
	m := s.loadMeter()
	if m == nil {
		return OverloadStats{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return OverloadStats{
		Served:     m.served,
		Shed:       m.shed,
		QueueDelay: simclock.Duration(m.queueDelay, m.env.Clock.FrequencyHz()),
		PeakQueue:  m.peakQueue,
		Load:       m.oci.Load,
		Reduction:  m.oci.Reduction,
	}
}

func (s *Server) loadMeter() *loadMeter {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.meter
}

// admit runs one request through the virtual queue: drain by the arrival
// gap, shed if the bounded queue is full (emergency exempt), otherwise
// charge the FIFO wait and enqueue the request's service cost. It returns
// a 503 OVERLOAD ProblemDetails on shed, nil on admit.
func (m *loadMeter) admit(ctx context.Context, name string, path string) *ProblemDetails {
	m.mu.Lock()
	if !m.armed {
		m.mu.Unlock()
		return nil
	}
	class := PriorityFrom(ctx)
	freq := m.env.Clock.FrequencyHz()

	// Advance the arrival axis. Unstamped requests join at the watermark:
	// they see the queue but do not drain it (the storm plan owns time).
	now := m.last
	if at, ok := simclock.ArrivalFrom(ctx); ok && at > now {
		now = at
	}
	if drained := now - m.last; drained > 0 && m.backlog > 0 {
		if drained >= m.backlog {
			m.backlog = 0
		} else {
			m.backlog -= drained
		}
	}

	// EWMA of instantaneous utilisation, decayed over the arrival gap.
	window := m.cfg.ServiceCycles * simclock.Cycles(max(m.cfg.MaxQueue, 8))
	util := float64(m.backlog) / float64(window)
	if util > 1 {
		util = 1
	}
	if dt := now - m.last; dt > 0 {
		halfLife := float64(simclock.FromDuration(m.cfg.HalfLife, freq))
		decay := math.Exp(-float64(dt) * math.Ln2 / halfLife)
		m.ewma = m.ewma*decay + util*(1-decay)
	} else {
		m.ewma = math.Max(m.ewma, util)
	}
	m.last = now

	queued := int(m.backlog / m.cfg.ServiceCycles)
	if queued > m.peakQueue {
		m.peakQueue = queued
	}

	m.seq++
	m.refreshOCI(freq)
	oci := m.oci

	if m.cfg.MaxQueue > 0 && queued >= m.cfg.MaxQueue && class != PriorityEmergency {
		m.shed[class]++
		m.mu.Unlock()
		pd := Problem(503, "Service Unavailable", CauseOverload,
			"%s%s: queue full (%d queued), %s-class request shed", name, path, queued, class)
		pd.RetryAfter = oci.RetryAfter
		pd.OCI = &oci
		return pd
	}

	wait := m.backlog
	m.backlog += m.cfg.ServiceCycles
	m.served[class]++
	m.queueDelay += wait
	m.mu.Unlock()

	if wait > 0 {
		// The FIFO wait behind the queued work ahead of this request.
		m.env.Charge(ctx, wait)
	}
	return nil
}

// refreshOCI recomputes the advertised snapshot; callers hold m.mu.
func (m *loadMeter) refreshOCI(freq uint64) {
	load := m.ewma
	if m.bias != nil {
		load += m.bias()
	}
	if load > 1 {
		load = 1
	}
	reduction := 0
	if load > m.cfg.TargetLoad {
		reduction = int((load - m.cfg.TargetLoad) / (1 - m.cfg.TargetLoad) * 100)
		if reduction > 90 {
			reduction = 90
		}
	}
	retry := m.backlog
	if min := m.cfg.ServiceCycles; retry < min {
		retry = min
	}
	m.oci = OCI{
		Load:       int(load*100 + 0.5),
		Reduction:  reduction,
		RetryAfter: simclock.Duration(retry, freq),
		Seq:        m.seq,
	}
}

// ociTable is the client-side record of the freshest OCI per peer.
type ociTable struct {
	mu    sync.Mutex
	peers map[string]OCI
}

func (t *ociTable) record(service string, oci OCI) {
	t.mu.Lock()
	if t.peers == nil {
		t.peers = make(map[string]OCI)
	}
	if prev, ok := t.peers[service]; !ok || oci.Seq >= prev.Seq {
		t.peers[service] = oci
	}
	t.mu.Unlock()
}

// PeerOCI implements OCISource.
func (t *ociTable) PeerOCI(service string) (OCI, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	oci, ok := t.peers[service]
	return oci, ok
}

// Binary codec for ProblemDetails (satellite: error-cause fidelity on the
// binary SBI path). A 503 OVERLOAD with Retry-After and an OCI must
// survive a negotiated binary session with exactly the JSON path's
// retryable classification; the golden parity test pins it.

// AppendBinary implements codec.Marshaler. Every numeric field travels as
// a bare uvarint scalar (AppendUint/Uint), never as an element count —
// counts are bounded by the remaining payload on decode, which a
// nanosecond Retry-After or an HTTP status would always overflow.
func (p *ProblemDetails) AppendBinary(dst []byte) []byte {
	dst = codec.AppendString(dst, p.Title)
	dst = codec.AppendUint(dst, uint64(p.Status))
	dst = codec.AppendString(dst, p.Detail)
	dst = codec.AppendString(dst, p.Cause)
	dst = codec.AppendUint(dst, uint64(p.RetryAfter))
	if p.OCI == nil {
		return codec.AppendByte(dst, 0)
	}
	dst = codec.AppendByte(dst, 1)
	dst = codec.AppendUint(dst, uint64(p.OCI.Load))
	dst = codec.AppendUint(dst, uint64(p.OCI.Reduction))
	dst = codec.AppendUint(dst, uint64(p.OCI.RetryAfter))
	dst = codec.AppendUint(dst, p.OCI.Seq)
	return dst
}

// DecodeBinary implements codec.Unmarshaler.
func (p *ProblemDetails) DecodeBinary(r *codec.Reader) error {
	p.Title = r.String()
	p.Status = int(r.Uint())
	p.Detail = r.String()
	p.Cause = r.String()
	p.RetryAfter = time.Duration(r.Uint())
	if r.Byte() == 1 {
		p.OCI = &OCI{
			Load:       int(r.Uint()),
			Reduction:  int(r.Uint()),
			RetryAfter: time.Duration(r.Uint()),
			Seq:        r.Uint(),
		}
	} else {
		p.OCI = nil
	}
	return r.Err()
}

// Compile-time codec and OCI-source conformance.
var (
	_ codec.Marshaler   = (*ProblemDetails)(nil)
	_ codec.Unmarshaler = (*ProblemDetails)(nil)
	_ OCISource         = (*Client)(nil)
	_ OCISource         = (*HTTPClient)(nil)
)
