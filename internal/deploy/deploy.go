// Package deploy composes complete 5G network slices: the service-chained
// VNFs (NRF, UDR, UDM, AUSF, AMF, SMF, UPF), the P-AKA execution
// environments under the chosen isolation mode, the gNB, and subscriber
// provisioning — the testbed of the paper's Fig. 4.
//
// Per the paper's co-location requirement (§IV-B), the P-AKA modules are
// deployed on the same simulated host as their parent VNFs: every module
// enclave is built on the slice's single SGX platform, and the
// cryptographic parameters never leave that host.
package deploy

import (
	"context"
	"crypto/ed25519"
	"crypto/rand"
	"fmt"
	"io"
	"sync"

	"shield5g/internal/costmodel"
	"shield5g/internal/crypto/suci"
	"shield5g/internal/gnb"
	"shield5g/internal/hmee/sev"
	"shield5g/internal/hmee/sgx"
	"shield5g/internal/nf/amf"
	"shield5g/internal/nf/ausf"
	"shield5g/internal/nf/nrf"
	"shield5g/internal/nf/smf"
	"shield5g/internal/nf/udm"
	"shield5g/internal/nf/udr"
	"shield5g/internal/nf/upf"
	"shield5g/internal/paka"
	"shield5g/internal/sbi"
)

// SliceConfig describes one network slice deployment.
type SliceConfig struct {
	// Isolation selects how the AKA functions run: Monolithic (inside
	// the VNFs), Container (extracted, unprotected), or SGX (extracted
	// and enclave-shielded).
	Isolation paka.Isolation
	// MCC/MNC is the serving PLMN (the paper's OTA test uses 001/01).
	MCC, MNC string
	// Seed makes the slice's virtual-time jitter reproducible.
	Seed uint64
	// Env overrides the cost environment (built from Seed when nil).
	Env *costmodel.Env
	// Platform overrides the SGX host (built from Seed when nil; only
	// used for SGX isolation).
	Platform *sgx.Platform
	// Radio selects the access profile (gNBSIM default).
	Radio gnb.RadioProfile
	// EnclaveSizeBytes/MaxThreads/DisablePreheat tune the module
	// enclaves for the Fig. 8 sweeps (defaults: 512 MiB, 4, preheat on).
	EnclaveSizeBytes uint64
	MaxThreads       int
	DisablePreheat   bool
	// Entropy overrides randomness (tests); nil selects crypto/rand.
	Entropy io.Reader
}

// Slice is a running network slice.
type Slice struct {
	Config   SliceConfig
	Env      *costmodel.Env
	Platform *sgx.Platform
	Registry *sbi.Registry

	NRF  *nrf.NRF
	UDR  *udr.UDR
	UDM  *udm.UDM
	AUSF *ausf.AUSF
	AMF  *amf.AMF
	SMF  *smf.SMF
	UPF  *upf.UPF
	GNB  *gnb.GNB

	// Modules holds the extracted P-AKA modules (empty for Monolithic).
	Modules map[paka.ModuleKind]*paka.Module

	// Remote clients expose the VNF-side response-time recorders
	// (nil for Monolithic).
	RemoteUDM  *paka.RemoteUDM
	RemoteAUSF *paka.RemoteAUSF
	RemoteAMF  *paka.RemoteAMF

	// MonoUDM is the in-process key store for Monolithic isolation.
	MonoUDM *paka.MonolithicUDM

	// HomeNetworkKey conceals/de-conceals SUPIs for this home network.
	HomeNetworkKey *suci.HomeNetworkKey

	entropy io.Reader

	attestMu sync.Mutex
	attested bool
}

// NewSlice builds and starts a slice. For SGX isolation the enclave build
// cost (Fig. 7) is charged to ctx's account.
func NewSlice(ctx context.Context, cfg SliceConfig) (*Slice, error) {
	if cfg.MCC == "" {
		cfg.MCC = "001"
	}
	if cfg.MNC == "" {
		cfg.MNC = "01"
	}
	if cfg.Isolation == 0 {
		cfg.Isolation = paka.SGX
	}
	entropy := cfg.Entropy
	if entropy == nil {
		entropy = rand.Reader
	}

	env := cfg.Env
	if env == nil {
		env = costmodel.NewEnv(nil, cfg.Seed, nil)
	}
	platform := cfg.Platform
	if platform == nil && cfg.Isolation == paka.SGX {
		var err error
		platform, err = sgx.NewPlatform(sgx.PlatformConfig{Seed: cfg.Seed, Entropy: entropy})
		if err != nil {
			return nil, fmt.Errorf("deploy: SGX platform: %w", err)
		}
	}

	s := &Slice{
		Config:   cfg,
		Env:      env,
		Platform: platform,
		Registry: sbi.NewRegistry(),
		Modules:  make(map[paka.ModuleKind]*paka.Module),
		entropy:  entropy,
	}

	hnKey, err := suci.GenerateHomeNetworkKey(entropy, 1)
	if err != nil {
		return nil, fmt.Errorf("deploy: home network key: %w", err)
	}
	s.HomeNetworkKey = hnKey

	if s.NRF, err = nrf.New(env, s.Registry); err != nil {
		return nil, fmt.Errorf("deploy: NRF: %w", err)
	}
	if s.UDR, err = udr.New(env, s.Registry); err != nil {
		return nil, fmt.Errorf("deploy: UDR: %w", err)
	}

	udmFns, ausfFns, amfFns, err := s.buildFunctions(ctx, cfg)
	if err != nil {
		return nil, err
	}

	hmee := cfg.Isolation == paka.SGX || cfg.Isolation == paka.SEV
	udmInvoker := sbi.NewClient(udm.ServiceName, env, s.Registry)
	if s.UDM, err = udm.New(ctx, udm.Config{
		Env: env, Registry: s.Registry, Invoker: udmInvoker,
		Functions: udmFns, HomeNetworkKey: hnKey, HMEE: hmee, Entropy: entropy,
	}); err != nil {
		return nil, fmt.Errorf("deploy: UDM: %w", err)
	}

	ausfInvoker := sbi.NewClient(ausf.ServiceName, env, s.Registry)
	if s.AUSF, err = ausf.New(ctx, ausf.Config{
		Env: env, Registry: s.Registry, Invoker: ausfInvoker,
		Functions: ausfFns, HMEE: hmee,
	}); err != nil {
		return nil, fmt.Errorf("deploy: AUSF: %w", err)
	}

	if s.UPF, err = upf.New(env, s.Registry); err != nil {
		return nil, fmt.Errorf("deploy: UPF: %w", err)
	}
	smfInvoker := sbi.NewClient(smf.ServiceName, env, s.Registry)
	if s.SMF, err = smf.New(ctx, smf.Config{Env: env, Registry: s.Registry, Invoker: smfInvoker}); err != nil {
		return nil, fmt.Errorf("deploy: SMF: %w", err)
	}

	amfInvoker := sbi.NewClient(amf.ServiceName, env, s.Registry)
	if s.AMF, err = amf.New(ctx, amf.Config{
		Env: env, Registry: s.Registry, Invoker: amfInvoker,
		Functions: amfFns, MCC: cfg.MCC, MNC: cfg.MNC, HMEE: hmee,
	}); err != nil {
		return nil, fmt.Errorf("deploy: AMF: %w", err)
	}

	if s.GNB, err = gnb.New(gnb.Config{
		Env: env, AMF: s.AMF, UPF: s.UPF, MCC: cfg.MCC, MNC: cfg.MNC, Radio: cfg.Radio,
	}); err != nil {
		return nil, fmt.Errorf("deploy: gNB: %w", err)
	}
	return s, nil
}

// buildFunctions creates the three AKA execution environments under the
// configured isolation mode.
func (s *Slice) buildFunctions(ctx context.Context, cfg SliceConfig) (paka.UDMFunctions, paka.AUSFFunctions, paka.AMFFunctions, error) {
	if cfg.Isolation == paka.Monolithic {
		s.MonoUDM = paka.NewMonolithicUDM(s.Env)
		return s.MonoUDM, paka.NewMonolithicAUSF(s.Env), paka.NewMonolithicAMF(s.Env), nil
	}

	// One GSC signing key for all module images of this operator.
	_, signKey, err := ed25519.GenerateKey(s.entropy)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("deploy: GSC sign key: %w", err)
	}
	for _, kind := range paka.Kinds() {
		m, err := paka.New(ctx, paka.Config{
			Kind:             kind,
			Isolation:        cfg.Isolation,
			Env:              s.Env,
			Platform:         s.Platform,
			Registry:         s.Registry,
			EnclaveSizeBytes: cfg.EnclaveSizeBytes,
			MaxThreads:       cfg.MaxThreads,
			DisablePreheat:   cfg.DisablePreheat,
			SignKey:          signKey,
		})
		if err != nil {
			return nil, nil, nil, fmt.Errorf("deploy: %s module: %w", kind, err)
		}
		s.Modules[kind] = m
	}

	s.RemoteUDM = paka.NewRemoteUDM(sbi.NewClient("udm", s.Env, s.Registry), s.Env)
	s.RemoteAUSF = paka.NewRemoteAUSF(sbi.NewClient("ausf", s.Env, s.Registry), s.Env)
	s.RemoteAMF = paka.NewRemoteAMF(sbi.NewClient("amf", s.Env, s.Registry), s.Env)
	return s.RemoteUDM, s.RemoteAUSF, s.RemoteAMF, nil
}

// attestEUDM verifies the eUDM execution environment's hardware-rooted
// attestation evidence before any subscriber key is released to it — the
// Key Issue 12/13 deployment-validation step of the paper's discussion.
// It runs once per slice and is a no-op for non-TEE isolation.
func (s *Slice) attestEUDM(m *paka.Module) error {
	s.attestMu.Lock()
	defer s.attestMu.Unlock()
	if s.attested {
		return nil
	}
	var nonce [64]byte
	copy(nonce[:], []byte("subscriber-provisioning-channel"))
	switch {
	case m.Enclave() != nil:
		quote, err := m.Enclave().GenerateQuote(nonce)
		if err != nil {
			return fmt.Errorf("deploy: eUDM quote: %w", err)
		}
		expected := m.Enclave().Measurement()
		if err := sgx.VerifyQuote(s.Platform.QuotingPublicKey(), quote, &expected); err != nil {
			return fmt.Errorf("deploy: eUDM attestation: %w", err)
		}
	case m.Machine() != nil:
		report, err := m.Machine().GenerateReport(nonce)
		if err != nil {
			return fmt.Errorf("deploy: eUDM SNP report: %w", err)
		}
		if err := sev.VerifyReport(m.Machine().SigningKey(), report); err != nil {
			return fmt.Errorf("deploy: eUDM attestation: %w", err)
		}
	}
	s.attested = true
	return nil
}

// ProvisionSubscriber installs a subscriber in the UDR and delivers the
// long-term key to the AKA execution environment (the eUDM enclave under
// SGX isolation, where it is shielded from introspection). For TEE-backed
// slices the environment's attestation evidence is verified before the
// first key is released.
func (s *Slice) ProvisionSubscriber(ctx context.Context, supi suci.SUPI, k, opc []byte) error {
	if err := supi.Validate(); err != nil {
		return err
	}
	imsi := supi.String()
	udrClient := udr.NewClient(sbi.NewClient("provisioning", s.Env, s.Registry))
	if err := udrClient.Provision(ctx, udr.Subscriber{
		SUPI:     imsi,
		K:        k,
		OPc:      opc,
		SQN:      []byte{0, 0, 0, 0, 0, 0},
		AMFField: []byte{0x80, 0x00}, // separation bit set for 5G AKA
	}); err != nil {
		return fmt.Errorf("deploy: UDR provisioning: %w", err)
	}
	if s.MonoUDM != nil {
		s.MonoUDM.ProvisionSubscriber(imsi, k)
		return nil
	}
	if m, ok := s.Modules[paka.EUDM]; ok {
		if err := s.attestEUDM(m); err != nil {
			return err
		}
		if err := m.ProvisionSubscriber(ctx, imsi, k); err != nil {
			return fmt.Errorf("deploy: eUDM provisioning: %w", err)
		}
	}
	return nil
}

// Stop tears the slice down, destroying any enclaves.
func (s *Slice) Stop() {
	for _, m := range s.Modules {
		m.Stop()
	}
}
