package costmodel

import (
	"context"

	"shield5g/internal/simclock"
)

// Env bundles the cost model with the virtual clock, jitter source and
// optional realtime realizer for components that are not SGX platforms
// (SBI transport, plain-container runtimes, UE/gNB simulation). All parts
// of one simulated testbed should share a single Env so their time bases
// agree.
type Env struct {
	Model    *Model
	Clock    *simclock.Clock
	Jitter   *simclock.Jitter
	Realizer *Realizer
}

// NewEnv builds an Env over the model with a deterministic jitter seed.
// A nil model selects Default(); realizer may be nil (accounting mode).
func NewEnv(m *Model, seed uint64, realizer *Realizer) *Env {
	if m == nil {
		m = Default()
	}
	return &Env{
		Model:    m,
		Clock:    simclock.New(m.FrequencyHz),
		Jitter:   simclock.NewJitter(seed),
		Realizer: realizer,
	}
}

// Charge applies n cycles to the request account in ctx, advances the
// shared clock, and realises the cost in realtime mode.
func (e *Env) Charge(ctx context.Context, n simclock.Cycles) {
	simclock.AccountFrom(ctx).Charge(n)
	e.Clock.Advance(n)
	e.Realizer.Realize(n)
}

// JitterFor returns the jitter source for the request in ctx: the
// per-worker stream when the parallel driver attached one, otherwise the
// env's shared root source (the sequential path, whose draw order must
// stay identical to the seed implementation).
func (e *Env) JitterFor(ctx context.Context) *simclock.Jitter {
	return simclock.JitterFrom(ctx, e.Jitter)
}
