package paka

import (
	"bytes"
	"context"
	"testing"

	"shield5g/internal/costmodel"
	"shield5g/internal/hmee/sgx"
	"shield5g/internal/sbi"
)

// switchlessModule deploys an SGX module with the switchless ECALL ring
// negotiated into its manifest.
func (h *harness) switchlessModule(t *testing.T, kind ModuleKind) *Module {
	t.Helper()
	m, err := New(context.Background(), Config{
		Kind:       kind,
		Isolation:  SGX,
		Env:        h.env,
		Platform:   h.platform,
		Registry:   h.registry,
		Switchless: true,
	})
	if err != nil {
		t.Fatalf("New(%s, SGX, switchless): %v", kind, err)
	}
	t.Cleanup(m.Stop)
	return m
}

// TestSwitchlessServesIdenticalAKAOutputs pins the ring path's crypto to
// the classic ECALL path bit-for-bit: the same-seed AV, SE derivation
// (RES*/K_SEAF), and K_AMF served through the switchless ring must equal
// the classic module's outputs. The ring changes how requests cross the
// boundary, never what they compute.
func TestSwitchlessServesIdenticalAKAOutputs(t *testing.T) {
	serve := func(switchless bool) (*UDMGenerateAVResponse, *AUSFDeriveSEResponse, *AMFDeriveKAMFResponse) {
		t.Helper()
		h := newHarness(t, 99)
		var udm, ausf, amf *Module
		if switchless {
			udm = h.switchlessModule(t, EUDM)
			ausf = h.switchlessModule(t, EAUSF)
			amf = h.switchlessModule(t, EAMF)
		} else {
			udm = h.module(t, EUDM, SGX)
			ausf = h.module(t, EAUSF, SGX)
			amf = h.module(t, EAMF, SGX)
		}
		_ = udm
		ctx := context.Background()
		if switchless {
			ctx = WithSwitchless(ctx)
		}
		if err := udm.ProvisionSubscriber(context.Background(), testSUPI, testK); err != nil {
			t.Fatalf("provision: %v", err)
		}
		var av UDMGenerateAVResponse
		if err := h.client.Post(ctx, EUDM.ServiceName(), PathUDMGenerateAV, avRequest(), &av); err != nil {
			t.Fatalf("GenerateAV: %v", err)
		}
		var se AUSFDeriveSEResponse
		if err := h.client.Post(ctx, EAUSF.ServiceName(), PathAUSFDeriveSE, &AUSFDeriveSERequest{
			RAND: av.RAND, XRESStar: av.XRESStar, KAUSF: av.KAUSF, SNN: testSNN,
		}, &se); err != nil {
			t.Fatalf("DeriveSE: %v", err)
		}
		var kamf AMFDeriveKAMFResponse
		if err := h.client.Post(ctx, EAMF.ServiceName(), PathAMFDeriveKAMF, &AMFDeriveKAMFRequest{
			KSEAF: se.KSEAF, SUPI: testSUPI, ABBA: []byte{0, 0},
		}, &kamf); err != nil {
			t.Fatalf("DeriveKAMF: %v", err)
		}
		if switchless {
			for _, m := range []*Module{udm, ausf, amf} {
				if st := m.RingStats(); st.Submitted == 0 {
					t.Fatalf("switchless %s module served without touching its ring", m.Kind())
				}
			}
		} else {
			_ = ausf
			_ = amf
		}
		return &av, &se, &kamf
	}

	avC, seC, kamfC := serve(false)
	avS, seS, kamfS := serve(true)

	if !bytes.Equal(avC.RAND, avS.RAND) || !bytes.Equal(avC.AUTN, avS.AUTN) ||
		!bytes.Equal(avC.XRESStar, avS.XRESStar) || !bytes.Equal(avC.KAUSF, avS.KAUSF) {
		t.Fatal("switchless AV diverges from the classic path at the same seed")
	}
	if !bytes.Equal(seC.KSEAF, seS.KSEAF) || !bytes.Equal(seC.HXRESStar, seS.HXRESStar) {
		t.Fatal("switchless SE derivation (K_SEAF / HXRES*) diverges from the classic path")
	}
	if !bytes.Equal(kamfC.KAMF, kamfS.KAMF) {
		t.Fatal("switchless K_AMF diverges from the classic path")
	}
}

// TestSwitchlessManifestNeedsDispatcherTCS pins the TCS arithmetic: a
// switchless module reserves one thread beyond the classic layout for the
// dispatcher, and the manifest validation rejects budgets without it.
func TestSwitchlessManifestNeedsDispatcherTCS(t *testing.T) {
	env := costmodel.NewEnv(nil, 5, nil)
	p, err := sgx.NewPlatform(sgx.PlatformConfig{Seed: 5})
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	m, err := New(context.Background(), Config{
		Kind: EUDM, Isolation: SGX, Env: env, Platform: p,
		Registry: sbi.NewRegistry(), Switchless: true,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer m.Stop()
	// One long-lived EENTER beyond process+helpers pins the dispatcher TCS.
	if got := m.Enclave().Config().MaxThreads; got < 5 {
		t.Fatalf("switchless module MaxThreads = %d, want >= 5 (dispatcher TCS)", got)
	}
}
