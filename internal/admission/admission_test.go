package admission

import (
	"context"
	"testing"
	"time"

	"shield5g/internal/sbi"
	"shield5g/internal/simclock"
)

func testConfig(clock *simclock.Clock) Config {
	cfg := Config{Clock: clock}
	cfg.Rates[sbi.PriorityFresh] = 100
	cfg.Bursts[sbi.PriorityFresh] = 2
	cfg.Rates[sbi.PriorityReattach] = 200
	cfg.Bursts[sbi.PriorityReattach] = 4
	// Emergency: rate 0 = unlimited.
	return cfg
}

func TestDisarmedIsPassThrough(t *testing.T) {
	ctrl := NewController(testConfig(simclock.New(0)))
	for i := 0; i < 1000; i++ {
		if err := ctrl.Admit(context.Background(), "gnb-1", sbi.PriorityFresh); err != nil {
			t.Fatalf("disarmed Admit rejected: %v", err)
		}
	}
	if st := ctrl.Stats(); st.Admitted[sbi.PriorityFresh] != 0 || st.TotalDropped() != 0 {
		t.Fatalf("disarmed controller counted traffic: %+v", st)
	}
}

func TestBurstThenDrop(t *testing.T) {
	clock := simclock.New(0)
	ctrl := NewController(testConfig(clock))
	ctrl.SetArmed(true)
	ctx := context.Background()

	// Burst depth is 2 for fresh: two admits, then drops at t=0.
	for i := 0; i < 2; i++ {
		if err := ctrl.Admit(ctx, "gnb-1", sbi.PriorityFresh); err != nil {
			t.Fatalf("admit %d within burst: %v", i, err)
		}
	}
	err := ctrl.Admit(ctx, "gnb-1", sbi.PriorityFresh)
	pd, ok := sbi.AsProblem(err)
	if !ok || pd.Status != 503 || pd.Cause != sbi.CauseOverload {
		t.Fatalf("over-burst admit: want 503 OVERLOAD, got %v", err)
	}
	if pd.RetryAfter <= 0 {
		t.Fatalf("drop carries no Retry-After: %+v", pd)
	}
	if !sbi.Retryable(err) {
		t.Fatal("admission drop must classify as retryable")
	}

	st := ctrl.Stats()
	if st.Admitted[sbi.PriorityFresh] != 2 || st.Dropped[sbi.PriorityFresh] != 1 {
		t.Fatalf("counters: %+v", st)
	}
}

func TestRefillOnVirtualTime(t *testing.T) {
	clock := simclock.New(0)
	ctrl := NewController(testConfig(clock))
	ctrl.SetArmed(true)
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		if err := ctrl.Admit(ctx, "gnb-1", sbi.PriorityFresh); err != nil {
			t.Fatalf("burst admit: %v", err)
		}
	}
	if err := ctrl.Admit(ctx, "gnb-1", sbi.PriorityFresh); err == nil {
		t.Fatal("expected drop with empty bucket")
	}

	// 100/s refill: 10ms of virtual time buys one token. Wall time does
	// nothing — only advancing the virtual clock refills.
	clock.AdvanceDuration(10 * time.Millisecond)
	if err := ctrl.Admit(ctx, "gnb-1", sbi.PriorityFresh); err != nil {
		t.Fatalf("admit after virtual refill: %v", err)
	}
	if err := ctrl.Admit(ctx, "gnb-1", sbi.PriorityFresh); err == nil {
		t.Fatal("bucket should hold exactly the one refilled token")
	}
}

func TestArrivalAxisRefill(t *testing.T) {
	clock := simclock.New(0)
	ctrl := NewController(testConfig(clock))
	ctrl.SetArmed(true)

	at := func(d time.Duration) context.Context {
		return simclock.WithArrival(context.Background(),
			simclock.FromDuration(d, clock.FrequencyHz()))
	}
	for i := 0; i < 2; i++ {
		if err := ctrl.Admit(at(0), "gnb-1", sbi.PriorityFresh); err != nil {
			t.Fatalf("burst admit: %v", err)
		}
	}
	if err := ctrl.Admit(at(0), "gnb-1", sbi.PriorityFresh); err == nil {
		t.Fatal("expected drop at t=0")
	}
	// An arrival stamped 10ms later refills one token even though the
	// shared clock never moved: the plan owns time.
	if err := ctrl.Admit(at(10*time.Millisecond), "gnb-1", sbi.PriorityFresh); err != nil {
		t.Fatalf("admit on stamped arrival: %v", err)
	}
}

func TestEmergencyNeverLimited(t *testing.T) {
	ctrl := NewController(testConfig(simclock.New(0)))
	ctrl.SetArmed(true)
	ctx := context.Background()
	for i := 0; i < 500; i++ {
		if err := ctrl.Admit(ctx, "gnb-1", sbi.PriorityEmergency); err != nil {
			t.Fatalf("emergency admit %d rejected: %v", i, err)
		}
	}
	if st := ctrl.Stats(); st.Admitted[sbi.PriorityEmergency] != 500 {
		t.Fatalf("emergency admits: %+v", st)
	}
}

func TestPerSourceIsolation(t *testing.T) {
	ctrl := NewController(testConfig(simclock.New(0)))
	ctrl.SetArmed(true)
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		if err := ctrl.Admit(ctx, "gnb-1", sbi.PriorityFresh); err != nil {
			t.Fatalf("gnb-1 burst: %v", err)
		}
	}
	if err := ctrl.Admit(ctx, "gnb-1", sbi.PriorityFresh); err == nil {
		t.Fatal("gnb-1 should be exhausted")
	}
	// A different source key has its own buckets.
	if err := ctrl.Admit(ctx, "gnb-2", sbi.PriorityFresh); err != nil {
		t.Fatalf("gnb-2 must not share gnb-1's bucket: %v", err)
	}
	if st := ctrl.Stats(); st.Sources != 2 {
		t.Fatalf("want 2 sources, got %+v", st)
	}
}

func TestDisarmResetsBuckets(t *testing.T) {
	ctrl := NewController(testConfig(simclock.New(0)))
	ctrl.SetArmed(true)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		_ = ctrl.Admit(ctx, "gnb-1", sbi.PriorityFresh)
	}
	ctrl.SetArmed(false)
	ctrl.SetArmed(true)
	// Fresh window: full burst again.
	for i := 0; i < 2; i++ {
		if err := ctrl.Admit(ctx, "gnb-1", sbi.PriorityFresh); err != nil {
			t.Fatalf("admit after re-arm: %v", err)
		}
	}
}
