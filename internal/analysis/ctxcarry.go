package analysis

import (
	"go/ast"
	"go/types"
)

// CtxCarry enforces the context discipline the SBI invokers and the
// chaos/resilience wrappers rely on: request accounts, per-worker
// jitter streams and virtual deadlines all travel in the
// context.Context, so a dropped or freshly minted context silently
// detaches a call from its request's cost accounting and fault
// injection. Three rules:
//
//  1. context.Context is always the first parameter of a function.
//  2. No context.Background()/context.TODO() below the top level: in a
//     main package, functions without a ctx parameter (the binary's
//     entry plumbing) may mint a root context; everywhere else —
//     library packages, and any function already handed a ctx — a
//     fresh root is a dropped request context (tests, which are not
//     analyzed, are the other legitimate top level).
//  3. No nil arguments for context.Context parameters.
var CtxCarry = &Analyzer{
	Name: "ctxcarry",
	Doc:  "thread context.Context first-arg-through; no fresh roots below top level",
	Run:  runCtxCarry,
}

func runCtxCarry(pass *Pass) error {
	info := pass.Pkg.Info
	isMain := pass.Pkg.Types.Name() == "main"

	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				// Package-level variable initialisers may mint a root
				// context only in a main package.
				if !isMain {
					checkNoRootCtx(pass, info, decl, false)
				}
				continue
			}
			checkCtxFirst(pass, info, fd)
			topLevel := isMain && !hasCtxParam(info, fd)
			checkNoRootCtx(pass, info, fd, topLevel)
		}
	}
	return nil
}

func hasCtxParam(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if t := info.TypeOf(field.Type); t != nil && isContextType(t) {
			return true
		}
	}
	return false
}

// checkCtxFirst flags context.Context parameters in any position other
// than the first.
func checkCtxFirst(pass *Pass, info *types.Info, fd *ast.FuncDecl) {
	if fd.Type.Params == nil {
		return
	}
	pos := 0
	for _, field := range fd.Type.Params.List {
		t := info.TypeOf(field.Type)
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if t != nil && isContextType(t) && pos > 0 {
			pass.Reportf(field.Pos(),
				"context.Context must be the first parameter of %s so callers thread the request context through",
				fd.Name.Name)
		}
		pos += n
	}
}

// checkNoRootCtx flags context.Background()/TODO() calls inside node
// unless topLevel is true.
func checkNoRootCtx(pass *Pass, info *types.Info, node ast.Node, topLevel bool) {
	ast.Inspect(node, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		checkNilCtxArgs(pass, info, call)
		if topLevel {
			return true
		}
		fn := calleeOf(info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			return true
		}
		if fn.Name() == "Background" || fn.Name() == "TODO" {
			pass.Reportf(call.Pos(),
				"context.%s below the top level detaches this call from the request's account, jitter stream and deadline; thread the caller's ctx through (or annotate: //shieldlint:ignore ctxcarry <why>)",
				fn.Name())
		}
		return true
	})
}

// checkNilCtxArgs flags untyped nil passed where the callee expects a
// context.Context.
func checkNilCtxArgs(pass *Pass, info *types.Info, call *ast.CallExpr) {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok || id.Name != "nil" || info.Uses[id] != types.Universe.Lookup("nil") {
			continue
		}
		if i >= sig.Params().Len() && !sig.Variadic() {
			continue
		}
		idx := i
		if idx >= sig.Params().Len() {
			idx = sig.Params().Len() - 1
		}
		pt := sig.Params().At(idx).Type()
		if sig.Variadic() && idx == sig.Params().Len()-1 {
			if s, ok := pt.(*types.Slice); ok && i >= sig.Params().Len()-1 {
				pt = s.Elem()
			}
		}
		if isContextType(pt) {
			pass.Reportf(arg.Pos(),
				"nil context passed to %s; pass the caller's ctx (or context.Background() at the true top level)",
				types.ExprString(call.Fun))
		}
	}
}

func isContextType(t types.Type) bool {
	return isNamed(t, "context", "Context")
}
