package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// SecretFlow is a type-based taint check confining AKA secrets to the
// enclave-side packages. Values carrying long-term or derived key
// material (the paper's Table I enclave inputs/outputs) must not reach
// formatting, logging or JSON-marshalling sinks outside internal/hmee
// and internal/paka, and the long-term key K must never ride in an SBI
// Post payload — per TS 33.501 it lives in the ARPF/enclave key store
// and is looked up by SUPI, not shipped.
var SecretFlow = &Analyzer{
	Name: "secretflow",
	Doc:  "confine secret key material to enclave-side packages",
	Run:  runSecretFlow,
}

// secretFieldNames are struct fields that carry secret material
// anywhere in the tree: the subscriber's long-term key and derived
// operator key, the AKA key hierarchy, sequence numbers (valuable to an
// attacker for linkability and replay), and sealed key blobs. Fields
// can opt in with a "shieldlint:secret" marker comment.
var secretFieldNames = map[string]bool{
	"K":          true,
	"OPc":        true,
	"KAUSF":      true,
	"KSEAF":      true,
	"KAMF":       true,
	"XRESStar":   true,
	"SQN":        true,
	"SQNMS":      true,
	"SealedKey":  true,
	"SealedKeys": true,
}

// longTermKeyOnly restricts the SBI-payload sub-check to the one field
// the paper's design says never crosses a service interface.
var longTermKeyOnly = map[string]bool{"K": true}

// enclavePackage reports whether the import path is enclave-side code
// allowed to marshal and handle secrets (internal/hmee/... and
// internal/paka).
func enclavePackage(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if seg == "hmee" || seg == "paka" {
			return true
		}
	}
	return false
}

func runSecretFlow(pass *Pass) error {
	if enclavePackage(pass.Pkg.ImportPath) {
		return nil
	}
	info := pass.Pkg.Info

	// Fields marked "shieldlint:secret" in this package join the set.
	marked := make(map[*types.Var]bool)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !fieldMarkedSecret(field) {
					continue
				}
				for _, name := range field.Names {
					if v, ok := info.Defs[name].(*types.Var); ok {
						marked[v] = true
					}
				}
			}
			return true
		})
	}

	tc := &taintChecker{info: info, marked: marked}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			tc.checkCall(pass, call)
			return true
		})
	}
	return nil
}

func fieldMarkedSecret(field *ast.Field) bool {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if strings.Contains(c.Text, "shieldlint:secret") {
				return true
			}
		}
	}
	return false
}

type taintChecker struct {
	info   *types.Info
	marked map[*types.Var]bool
}

func (tc *taintChecker) checkCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeOf(tc.info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return
	}

	switch fn.Pkg().Path() {
	case "fmt", "log", "log/slog":
		tc.checkArgs(pass, call, call.Args, fn.Pkg().Path()+"."+fn.Name())
		return
	case "encoding/json":
		switch fn.Name() {
		case "Marshal", "MarshalIndent", "Encode":
			tc.checkArgs(pass, call, call.Args, "encoding/json."+fn.Name())
			return
		}
	}

	// SBI payloads: an Invoker-shaped Post(ctx, service, path, req,
	// resp) must never carry the long-term key K in either direction.
	if fn.Name() == "Post" && sig.Recv() != nil && sig.Params().Len() == 5 && len(call.Args) == 5 {
		for _, arg := range call.Args[3:] {
			if t := tc.info.TypeOf(arg); t != nil && typeCarriesSecret(t, longTermKeyOnly, nil, 0) {
				pass.Reportf(arg.Pos(),
					"SBI payload type %s carries the long-term key K across a service interface; K belongs in the enclave key store (provisioned, looked up by SUPI) — annotate a deliberate exception: //shieldlint:ignore secretflow <why>",
					t.String())
			}
		}
		return
	}

	// Printf-style wrappers ((..., format string, args ...any)): the
	// variadic arguments end up formatted into logs or errors.
	if sig.Variadic() && sig.Params().Len() >= 2 {
		np := sig.Params().Len()
		last := sig.Params().At(np - 1).Type()
		prev := sig.Params().At(np - 2).Type()
		if isAnySlice(last) && isString(prev) && len(call.Args) >= np {
			tc.checkArgs(pass, call, call.Args[np-1:], fn.Name())
		}
	}
}

func (tc *taintChecker) checkArgs(pass *Pass, call *ast.CallExpr, args []ast.Expr, sink string) {
	for _, arg := range args {
		if expr := tc.secretExpr(arg); expr != "" {
			pass.Reportf(arg.Pos(),
				"secret %s flows into %s outside the enclave-side packages (internal/hmee, internal/paka); drop it or annotate: //shieldlint:ignore secretflow <why>",
				expr, sink)
		} else if t := tc.info.TypeOf(arg); t != nil && typeCarriesSecret(t, secretFieldNames, nil, 0) {
			pass.Reportf(arg.Pos(),
				"value of secret-bearing type %s flows into %s outside the enclave-side packages (internal/hmee, internal/paka); marshal a redacted view or annotate: //shieldlint:ignore secretflow <why>",
				t.String(), sink)
		}
	}
}

// secretExpr reports a description of the first secret field selection
// inside e, or "" when e is clean.
func (tc *taintChecker) secretExpr(e ast.Expr) string {
	found := ""
	ast.Inspect(e, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			// len(s.K) and cap(s.K) reveal only the size, which for
			// fixed-length key material is public knowledge.
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
				if obj := tc.info.Uses[id]; obj != nil && obj.Parent() == types.Universe {
					return false
				}
			}
		case *ast.SelectorExpr:
			if v, ok := tc.info.Uses[x.Sel].(*types.Var); ok && v.IsField() && (secretFieldNames[v.Name()] || tc.marked[v]) {
				found = "field " + v.Name()
				return false
			}
		case *ast.Ident:
			if v, ok := tc.info.Uses[x].(*types.Var); ok && v.IsField() && (secretFieldNames[v.Name()] || tc.marked[v]) {
				found = "field " + v.Name()
				return false
			}
		}
		return true
	})
	return found
}

// typeCarriesSecret reports whether t (or anything reachable from it
// through pointers, containers and struct fields) declares a field in
// the names set.
func typeCarriesSecret(t types.Type, names map[string]bool, seen map[types.Type]bool, depth int) bool {
	if depth > 6 || t == nil {
		return false
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	if seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		return typeCarriesSecret(u.Elem(), names, seen, depth+1)
	case *types.Slice:
		return typeCarriesSecret(u.Elem(), names, seen, depth+1)
	case *types.Array:
		return typeCarriesSecret(u.Elem(), names, seen, depth+1)
	case *types.Map:
		return typeCarriesSecret(u.Elem(), names, seen, depth+1)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if names[f.Name()] {
				return true
			}
			if typeCarriesSecret(f.Type(), names, seen, depth+1) {
				return true
			}
		}
	}
	return false
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.String
}

func isAnySlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	i, ok := s.Elem().Underlying().(*types.Interface)
	return ok && i.Empty()
}
