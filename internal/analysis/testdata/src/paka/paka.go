// Package paka is a shieldlint fixture proving the enclave-side
// exemption: its directory path contains a "paka" segment, so the
// secretflow analyzer must report nothing here even though the same
// code would be flagged anywhere else.
package paka

import "fmt"

type Vector struct {
	KAUSF []byte
	SQN   []byte
}

func dump(v Vector) {
	fmt.Printf("enclave-side debug: %x %x\n", v.KAUSF, v.SQN)
}
