// Command core5g deploys the full 5G core slice and exposes every SBI
// service over real HTTP — the runnable-network counterpart of the
// simulation, useful for poking the NF endpoints with curl.
//
// Usage:
//
//	core5g [-addr :8080] [-isolation sgx] [-demo]
//
// With -demo the command registers one UE through the full stack before
// serving, printing the NAS/AKA transcript summary.
package main

import (
	"context"
	"crypto/rand"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	"shield5g"
	"shield5g/internal/sbi"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8080", "HTTP listen address for the SBI services")
	isolation := flag.String("isolation", "sgx", "AKA isolation: monolithic, container, sgx or sev")
	demo := flag.Bool("demo", true, "register one UE end to end before serving")
	serve := flag.Bool("serve", false, "keep serving the SBI over HTTP until interrupted")
	tlsDir := flag.String("tlsdir", "", "serve with mutual TLS (TS 33.210), writing ca.pem/client.pem/client.key for curl into this directory")
	flag.Parse()

	var iso shield5g.Isolation
	switch *isolation {
	case "monolithic":
		iso = shield5g.Monolithic
	case "container":
		iso = shield5g.Container
	case "sgx":
		iso = shield5g.SGX
	case "sev":
		iso = shield5g.SEV
	default:
		fmt.Fprintf(os.Stderr, "core5g: unknown isolation %q\n", *isolation)
		return 2
	}

	ctx := context.Background()
	tb, err := shield5g.NewTestbed(ctx, shield5g.SliceConfig{Isolation: iso, Seed: 1})
	if err != nil {
		fmt.Fprintf(os.Stderr, "core5g: deploy: %v\n", err)
		return 1
	}
	defer tb.Close()

	names := tb.Slice.Registry.Names()
	fmt.Printf("5G core slice up (%s isolation): %d SBI services\n", iso, len(names))

	if *demo {
		k := make([]byte, 16)
		if _, err := rand.Read(k); err != nil {
			fmt.Fprintf(os.Stderr, "core5g: entropy: %v\n", err)
			return 1
		}
		sub, err := tb.AddSubscriber(ctx, k, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "core5g: provision: %v\n", err)
			return 1
		}
		sess, err := tb.Register(ctx, sub)
		if err != nil {
			fmt.Fprintf(os.Stderr, "core5g: registration: %v\n", err)
			return 1
		}
		if err := sess.EstablishPDUSession(ctx, 1, "internet"); err != nil {
			fmt.Fprintf(os.Stderr, "core5g: PDU session: %v\n", err)
			return 1
		}
		echo, err := sess.SendData(ctx, []byte("hello-5g"))
		if err != nil {
			fmt.Fprintf(os.Stderr, "core5g: data path: %v\n", err)
			return 1
		}
		guti, _ := sub.UE.GUTI()
		fmt.Printf("demo UE %s registered: GUTI=%s addr=%s setup=%v echo=%q\n",
			sub.SUPI.String(), guti, sub.UE.UEAddress(), sess.SetupTime.Round(time.Microsecond), echo)
	}

	if !*serve {
		return 0
	}

	mux := http.NewServeMux()
	for _, name := range names {
		srv, ok := tb.Slice.Registry.Lookup(name)
		if !ok {
			continue
		}
		for _, path := range srv.Paths() {
			mux.Handle(path, srv)
			fmt.Printf("  %-12s POST %s\n", name, path)
		}
	}
	httpSrv := &http.Server{Addr: *addr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	errCh := make(chan error, 1)
	if *tlsDir != "" {
		pki, err := sbi.NewPKI("shield5g", 24*time.Hour)
		if err != nil {
			fmt.Fprintf(os.Stderr, "core5g: PKI: %v\n", err)
			return 1
		}
		cfg, err := pki.ServerTLS("sbi-gateway", []string{"127.0.0.1", "localhost"})
		if err != nil {
			fmt.Fprintf(os.Stderr, "core5g: server TLS: %v\n", err)
			return 1
		}
		httpSrv.TLSConfig = cfg
		if err := writeClientCreds(pki, *tlsDir); err != nil {
			fmt.Fprintf(os.Stderr, "core5g: write TLS credentials: %v\n", err)
			return 1
		}
		go func() { errCh <- httpSrv.ListenAndServeTLS("", "") }()
		fmt.Printf("serving SBI with mutual TLS on %s (Ctrl-C to stop)\n", *addr)
		fmt.Printf("curl --cacert %[1]s/ca.pem --cert %[1]s/client.pem --key %[1]s/client.key https://127.0.0.1:<port><path>\n", *tlsDir)
	} else {
		go func() { errCh <- httpSrv.ListenAndServe() }()
		fmt.Printf("serving SBI on %s (Ctrl-C to stop)\n", *addr)
	}

	select {
	case <-stop:
		shutdownCtx, cancel := context.WithTimeout(ctx, 3*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
		return 0
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "core5g: serve: %v\n", err)
			return 1
		}
		return 0
	}
}

// writeClientCreds exports the operator CA and a client identity so curl
// (or another NF) can join the mutual-TLS mesh.
func writeClientCreds(pki *sbi.PKI, dir string) error {
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return err
	}
	certPEM, keyPEM, err := pki.IssuePEM("operator-client", nil)
	if err != nil {
		return err
	}
	files := map[string][]byte{
		"ca.pem":     pki.CAPEM(),
		"client.pem": certPEM,
		"client.key": keyPEM,
	}
	for name, data := range files {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o600); err != nil {
			return err
		}
	}
	return nil
}

// Interface check: every SBI server must be HTTP-mountable.
var _ http.Handler = (*sbi.Server)(nil)
