package sbi

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"shield5g/internal/costmodel"
	"shield5g/internal/simclock"
)

// invokerFunc adapts a function to the Invoker interface.
type invokerFunc func(ctx context.Context, service, path string, req, resp any) error

func (f invokerFunc) Post(ctx context.Context, service, path string, req, resp any) error {
	return f(ctx, service, path, req, resp)
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{Problem(429, "Too Many Requests", CauseCongestion, "x"), true},
		{Problem(500, "Internal Server Error", CauseSystem, "x"), true},
		{Problem(503, "Service Unavailable", CauseUnreachable, "x"), true},
		{Problem(504, "Gateway Timeout", CauseTimeout, "x"), true},
		{Problem(400, "Bad Request", "MANDATORY_IE_MISSING", "x"), false},
		{Problem(403, "Forbidden", "AUTHENTICATION_REJECTED", "x"), false},
		{Problem(404, "Not Found", "CONTEXT_NOT_FOUND", "x"), false},
		{errors.New("transport plumbing"), true},
	}
	for _, c := range cases {
		if got := Retryable(c.err); got != c.want {
			t.Errorf("Retryable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestBreakerStateMachine(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, OpenTimeout: 100 * time.Millisecond, HalfOpenProbes: 2})
	if b.State() != BreakerClosed {
		t.Fatalf("initial state = %v, want closed", b.State())
	}

	// closed -> open after three consecutive failures (a success in
	// between resets the streak).
	b.OnFailure(0)
	b.OnFailure(0)
	b.OnSuccess()
	b.OnFailure(10 * time.Millisecond)
	b.OnFailure(10 * time.Millisecond)
	if b.State() != BreakerClosed {
		t.Fatalf("state after interrupted streak = %v, want closed", b.State())
	}
	b.OnFailure(20 * time.Millisecond)
	if b.State() != BreakerOpen {
		t.Fatalf("state after threshold = %v, want open", b.State())
	}

	// open rejects during the cooldown, reporting the remaining wait.
	ok, retryAfter := b.Allow(60 * time.Millisecond)
	if ok || retryAfter != 60*time.Millisecond {
		t.Fatalf("Allow during cooldown = (%v, %v), want (false, 60ms)", ok, retryAfter)
	}

	// open -> half-open once the cooldown elapses; probes are bounded.
	if ok, _ := b.Allow(120 * time.Millisecond); !ok {
		t.Fatal("first probe not admitted after cooldown")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if ok, _ := b.Allow(121 * time.Millisecond); !ok {
		t.Fatal("second probe not admitted")
	}
	if ok, retryAfter := b.Allow(122 * time.Millisecond); ok || retryAfter != 0 {
		t.Fatalf("saturated half-open = (%v, %v), want (false, 0)", ok, retryAfter)
	}

	// half-open -> closed after the probes succeed.
	b.OnSuccess()
	b.OnSuccess()
	if b.State() != BreakerClosed {
		t.Fatalf("state after probe successes = %v, want closed", b.State())
	}

	// A half-open probe failure re-opens immediately.
	b.OnFailure(200 * time.Millisecond)
	b.OnFailure(200 * time.Millisecond)
	b.OnFailure(200 * time.Millisecond)
	if ok, _ := b.Allow(400 * time.Millisecond); !ok {
		t.Fatal("probe not admitted after second cooldown")
	}
	b.OnFailure(400 * time.Millisecond)
	if b.State() != BreakerOpen {
		t.Fatalf("state after probe failure = %v, want open", b.State())
	}
	if ok, _ := b.Allow(420 * time.Millisecond); ok {
		t.Fatal("request admitted right after a failed probe re-opened the circuit")
	}
}

func TestResilientRetriesTransientThenSucceeds(t *testing.T) {
	env := newEnv()
	calls := 0
	inner := invokerFunc(func(context.Context, string, string, any, any) error {
		calls++
		if calls < 3 {
			return Problem(503, "Service Unavailable", CauseUnreachable, "warming up")
		}
		return nil
	})
	r := NewResilient(inner, env, DefaultResilienceConfig())
	var acct simclock.Account
	ctx := simclock.WithAccount(context.Background(), &acct)
	if err := r.Post(ctx, "udm", "/x", nil, nil); err != nil {
		t.Fatalf("Post: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if acct.Total() == 0 {
		t.Fatal("backoff waits not charged to the request account")
	}
}

func TestResilientPermanentErrorNotRetried(t *testing.T) {
	env := newEnv()
	calls := 0
	perm := Problem(403, "Forbidden", "AUTHENTICATION_REJECTED", "no")
	inner := invokerFunc(func(context.Context, string, string, any, any) error {
		calls++
		return perm
	})
	r := NewResilient(inner, env, DefaultResilienceConfig())
	err := r.Post(context.Background(), "udm", "/x", nil, nil)
	if !errors.Is(err, perm) && !HasCause(err, "AUTHENTICATION_REJECTED") {
		t.Fatalf("err = %v, want the permanent problem", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (permanent errors must not be retried)", calls)
	}
	// A definitive answer keeps the breaker closed: the peer is alive.
	if st := r.BreakerFor("udm").State(); st != BreakerClosed {
		t.Fatalf("breaker state = %v, want closed", st)
	}
}

func TestResilientCircuitOpensAndReports(t *testing.T) {
	env := newEnv()
	inner := invokerFunc(func(context.Context, string, string, any, any) error {
		return Problem(503, "Service Unavailable", CauseUnreachable, "down")
	})
	r := NewResilient(inner, env, ResilienceConfig{
		Retry:   RetryPolicy{MaxAttempts: 1},
		Breaker: BreakerConfig{FailureThreshold: 1, OpenTimeout: time.Hour, HalfOpenProbes: 1},
	})
	if err := r.Post(context.Background(), "udm", "/x", nil, nil); !HasCause(err, CauseUnreachable) {
		t.Fatalf("first err = %v, want 503 %s", err, CauseUnreachable)
	}
	if st := r.BreakerFor("udm").State(); st != BreakerOpen {
		t.Fatalf("breaker state = %v, want open", st)
	}
	// With the circuit open the request is rejected without touching the
	// inner transport, surfacing the distinct CIRCUIT_OPEN cause.
	if err := r.Post(context.Background(), "udm", "/x", nil, nil); !HasCause(err, CauseCircuitOpen) {
		t.Fatalf("err with open circuit = %v, want 503 %s", err, CauseCircuitOpen)
	}
	// Other services are unaffected: breakers are per-service.
	if err := r.Post(context.Background(), "ausf", "/y", nil, nil); !HasCause(err, CauseUnreachable) {
		t.Fatalf("other-service err = %v, want 503 %s", err, CauseUnreachable)
	}
}

func TestResilientVirtualDeadline(t *testing.T) {
	env := newEnv()
	calls := 0
	inner := invokerFunc(func(context.Context, string, string, any, any) error {
		calls++
		return Problem(503, "Service Unavailable", CauseUnreachable, "down")
	})
	r := NewResilient(inner, env, ResilienceConfig{
		Retry:          RetryPolicy{MaxAttempts: 100, InitialBackoff: 50 * time.Millisecond, MaxBackoff: 50 * time.Millisecond, Multiplier: 1},
		Deadline:       120 * time.Millisecond,
		DisableBreaker: true,
	})
	var acct simclock.Account
	ctx := simclock.WithAccount(context.Background(), &acct)
	err := r.Post(ctx, "udm", "/x", nil, nil)
	if !HasCause(err, CauseTimeout) {
		t.Fatalf("err = %v, want 504 %s", err, CauseTimeout)
	}
	if calls == 0 || calls >= 100 {
		t.Fatalf("calls = %d, want a few attempts bounded by the deadline", calls)
	}
	// The deadline is enforced on virtual time: the account never runs
	// past the budget.
	if spent := env.Model.Duration(acct.Total()); spent > 121*time.Millisecond {
		t.Fatalf("spent %v of virtual time, budget was 120ms", spent)
	}
}

// TestResilientAttemptOvershootsBudget regresses the unsigned-subtraction
// bug in the deadline remainder: an attempt that itself charges more than
// the whole budget (a crash-triggered enclave reload does this) must end
// the call with a 504, not charge ~2^64 cycles to the shared clock.
func TestResilientAttemptOvershootsBudget(t *testing.T) {
	env := newEnv()
	freq := env.Clock.FrequencyHz()
	inner := invokerFunc(func(ctx context.Context, _, _ string, _, _ any) error {
		env.Charge(ctx, simclock.FromDuration(100*time.Millisecond, freq))
		return Problem(503, "Service Unavailable", CauseUnreachable, "reloading")
	})
	r := NewResilient(inner, env, ResilienceConfig{
		Retry:          DefaultRetryPolicy(),
		Deadline:       50 * time.Millisecond,
		DisableBreaker: true,
	})
	var acct simclock.Account
	ctx := simclock.WithAccount(context.Background(), &acct)
	err := r.Post(ctx, "udm", "/x", nil, nil)
	if !HasCause(err, CauseTimeout) {
		t.Fatalf("err = %v, want 504 %s", err, CauseTimeout)
	}
	if spent := env.Model.Duration(acct.Total()); spent > 200*time.Millisecond {
		t.Fatalf("spent %v of virtual time, want roughly the one overshooting attempt", spent)
	}
	if elapsed := env.Model.Duration(env.Clock.Elapsed()); elapsed > time.Second {
		t.Fatalf("shared clock advanced %v (unsigned underflow)", elapsed)
	}
}

func TestResilientCancelledContext(t *testing.T) {
	env := newEnv()
	inner := invokerFunc(func(context.Context, string, string, any, any) error {
		t.Fatal("inner transport reached with a cancelled context")
		return nil
	})
	r := NewResilient(inner, env, DefaultResilienceConfig())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := r.Post(ctx, "udm", "/x", nil, nil); !HasCause(err, CauseTimeout) {
		t.Fatalf("err = %v, want 504 %s", err, CauseTimeout)
	}
}

// TestClientPostCancelledContext covers the transport itself: Client.Post
// must check ctx before dispatching and surface cancellation as a distinct
// 504/TIMEOUT ProblemDetails instead of a half-executed request.
func TestClientPostCancelledContext(t *testing.T) {
	env := newEnv()
	reg := NewRegistry()
	if err := reg.Register(echoServer(t, env)); err != nil {
		t.Fatalf("Register: %v", err)
	}
	c := NewClient("ausf", env, reg)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := c.Post(ctx, "udm", "/echo", &echoReq{Value: "hi"}, nil)
	pd, ok := AsProblem(err)
	if !ok || pd.Status != 504 || pd.Cause != CauseTimeout {
		t.Fatalf("err = %v, want ProblemDetails 504 %s", err, CauseTimeout)
	}
}

// TestResilientBackoffDeterminism pins the retry schedule: with the same
// env seed, the virtual times of every attempt are identical run to run.
func TestResilientBackoffDeterminism(t *testing.T) {
	schedule := func() []simclock.Cycles {
		env := costmodel.NewEnv(nil, 99, nil)
		var at []simclock.Cycles
		var acct simclock.Account
		ctx := simclock.WithAccount(context.Background(), &acct)
		inner := invokerFunc(func(context.Context, string, string, any, any) error {
			at = append(at, acct.Total())
			return Problem(503, "Service Unavailable", CauseUnreachable, "down")
		})
		r := NewResilient(inner, env, ResilienceConfig{
			Retry:          DefaultRetryPolicy(),
			DisableBreaker: true,
		})
		if err := r.Post(ctx, "udm", "/x", nil, nil); !HasCause(err, CauseUnreachable) {
			t.Fatalf("Post: %v", err)
		}
		return at
	}
	a, b := schedule(), schedule()
	if len(a) != DefaultRetryPolicy().MaxAttempts {
		t.Fatalf("attempts = %d, want %d", len(a), DefaultRetryPolicy().MaxAttempts)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("retry schedules diverged:\n  %v\n  %v", a, b)
	}
	// The jittered waits must actually space the attempts out.
	for i := 1; i < len(a); i++ {
		if a[i] <= a[i-1] {
			t.Fatalf("attempt %d not after attempt %d: %v", i, i-1, a)
		}
	}
}

// TestResilientHonoursRetryAfter verifies the Retry-After floor: a 429
// carrying a Retry-After above the backoff delays the next attempt by at
// least that much virtual time.
func TestResilientHonoursRetryAfter(t *testing.T) {
	env := newEnv()
	calls := 0
	var acct simclock.Account
	ctx := simclock.WithAccount(context.Background(), &acct)
	var gap simclock.Cycles
	inner := invokerFunc(func(context.Context, string, string, any, any) error {
		calls++
		if calls == 1 {
			pd := Problem(429, "Too Many Requests", CauseCongestion, "slow down")
			pd.RetryAfter = 200 * time.Millisecond
			return pd
		}
		gap = acct.Total()
		return nil
	})
	r := NewResilient(inner, env, ResilienceConfig{
		Retry:          RetryPolicy{MaxAttempts: 2, InitialBackoff: time.Millisecond},
		DisableBreaker: true,
	})
	if err := r.Post(ctx, "udm", "/x", nil, nil); err != nil {
		t.Fatalf("Post: %v", err)
	}
	if got := env.Model.Duration(gap); got < 200*time.Millisecond {
		t.Fatalf("second attempt after %v, want >= the 200ms Retry-After", got)
	}
}
