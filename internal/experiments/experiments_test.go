package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"shield5g/internal/paka"
)

var quick = Config{Seed: 7, Iterations: 60}

func TestFig7LoadTimesNearOneMinute(t *testing.T) {
	cfg := quick
	cfg.Iterations = 10
	r, err := Fig7(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Fig7: %v", err)
	}
	for _, kind := range paka.Kinds() {
		s, ok := r.Load[kind]
		if !ok || s.N == 0 {
			t.Fatalf("no samples for %s", kind)
		}
		if s.Median < 45*time.Second || s.Median > 75*time.Second {
			t.Errorf("%s load median = %v, want ~1 minute (Fig. 7)", kind, s.Median)
		}
		// The box spread should be tight (the paper's quartiles span
		// hundredths of a minute).
		if s.Q3-s.Q1 > 5*time.Second {
			t.Errorf("%s IQR = %v, too wide", kind, s.Q3-s.Q1)
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Figure 7") {
		t.Fatal("render missing header")
	}
}

func TestFig8ThreadsFlatEPCPenalty(t *testing.T) {
	r, err := Fig8(context.Background(), quick)
	if err != nil {
		t.Fatalf("Fig8: %v", err)
	}
	if len(r.Points) != 4 {
		t.Fatalf("points = %d, want 4", len(r.Points))
	}
	t4, t10, big, native := r.Points[0], r.Points[1], r.Points[2], r.Points[3]

	// More threads alone change nothing for a single client (within 10%).
	ratio := float64(t10.Total.Median) / float64(t4.Total.Median)
	if ratio < 0.90 || ratio > 1.10 {
		t.Errorf("thread=10/thread=4 LT ratio = %.3f, want ~1", ratio)
	}
	// The 8 GiB enclave pays paging pressure: slower and wider IQR.
	if big.Total.Median <= t4.Total.Median {
		t.Errorf("8GiB median (%v) not above 512MiB median (%v)", big.Total.Median, t4.Total.Median)
	}
	if big.Total.Q3-big.Total.Q1 <= t4.Total.Q3-t4.Total.Q1 {
		t.Errorf("8GiB IQR (%v) not wider than 512MiB IQR (%v)",
			big.Total.Q3-big.Total.Q1, t4.Total.Q3-t4.Total.Q1)
	}
	// Non-SGX is clearly faster.
	if float64(t4.Total.Median) < 1.5*float64(native.Total.Median) {
		t.Errorf("SGX LT (%v) not well above non-SGX (%v)", t4.Total.Median, native.Total.Median)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Non-SGX") {
		t.Fatal("render missing baseline row")
	}
}

func TestFig9AndTable2Bands(t *testing.T) {
	f9, err := Fig9(context.Background(), quick)
	if err != nil {
		t.Fatalf("Fig9: %v", err)
	}
	t2 := Table2From(f9)
	if len(t2.Rows) != 3 {
		t.Fatalf("table2 rows = %d", len(t2.Rows))
	}
	for _, row := range t2.Rows {
		if row.LFRatio < 1.1 || row.LFRatio > 1.7 {
			t.Errorf("%s LF ratio %.2f outside paper band 1.2-1.5 (tolerance 1.1-1.7)", row.Module, row.LFRatio)
		}
		if row.LTRatio < 1.6 || row.LTRatio > 2.7 {
			t.Errorf("%s LT ratio %.2f outside paper band 1.86-2.43 (tolerance 1.6-2.7)", row.Module, row.LTRatio)
		}
		if row.ResponseRatio < 1.9 || row.ResponseRatio > 3.1 {
			t.Errorf("%s response ratio %.2f outside paper band 2.2-2.9 (tolerance 1.9-3.1)", row.Module, row.ResponseRatio)
		}
		if row.InitialRatio < 10 || row.InitialRatio > 35 {
			t.Errorf("%s RI/RS %.1f outside paper band ~18-21 (tolerance 10-35)", row.Module, row.InitialRatio)
		}
	}

	// Ordering: eUDM carries the most bytes and is the slowest.
	if !(f9.Functional[paka.EUDM].SGX.Median > f9.Functional[paka.EAUSF].SGX.Median &&
		f9.Functional[paka.EAUSF].SGX.Median > f9.Functional[paka.EAMF].SGX.Median) {
		t.Error("SGX LF ordering violated")
	}

	var buf bytes.Buffer
	f9.Render(&buf)
	t2.Render(&buf)
	out := buf.String()
	for _, want := range []string{"Figure 9a", "Figure 9b", "Table II", "eUDM", "eAUSF", "eAMF"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFig10InitialResponse(t *testing.T) {
	r, err := Fig10(context.Background(), quick)
	if err != nil {
		t.Fatalf("Fig10: %v", err)
	}
	for _, kind := range paka.Kinds() {
		ri := r.Initial(kind)
		// The paper's Fig. 10b y-axis spans 22.0-23.6 ms.
		if ri < 18*time.Millisecond || ri > 28*time.Millisecond {
			t.Errorf("%s RI = %v, want ~22-24 ms", kind, ri)
		}
		if r.StableSGX(kind) <= r.StableContainer(kind) {
			t.Errorf("%s stable SGX not above container", kind)
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Figure 10b") {
		t.Fatal("render missing Fig 10b")
	}
}

func TestTable3Shape(t *testing.T) {
	cfg := quick
	r, err := Table3(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Table3: %v", err)
	}
	if len(r.Rows) != 9 { // 3 modules x 3 UE counts
		t.Fatalf("rows = %d, want 9", len(r.Rows))
	}
	for _, row := range r.Rows {
		// Absolute populations near the paper's (~1500 EENTER at 1 UE,
		// ~140k AEX).
		if row.EENTERs < 1300 || row.EENTERs > 2100 {
			t.Errorf("%s/%dUE EENTERs = %d, want ~1500-1800", row.Module, row.UEs, row.EENTERs)
		}
		if row.EENTERs <= row.EEXITs {
			t.Errorf("%s/%dUE EENTER (%d) not above EEXIT (%d)", row.Module, row.UEs, row.EENTERs, row.EEXITs)
		}
		if row.AEXs < 120_000 || row.AEXs > 160_000 {
			t.Errorf("%s/%dUE AEXs = %d, want ~140k", row.Module, row.UEs, row.AEXs)
		}
	}
	// AEX must be independent of the UE count (within noise).
	byModule := make(map[string][]uint64)
	for _, row := range r.Rows {
		byModule[row.Module] = append(byModule[row.Module], row.AEXs)
	}
	for module, aexs := range byModule {
		var lo, hi = aexs[0], aexs[0]
		for _, v := range aexs {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if float64(hi-lo) > 0.05*float64(hi) {
			t.Errorf("%s AEX varies with UE count: %v", module, aexs)
		}
	}
	// Empty workload baseline near 762/680 EENTER/EEXIT and ~50k AEX.
	if r.Empty.EENTERs < 700 || r.Empty.EENTERs > 830 {
		t.Errorf("empty EENTERs = %d, want ~762", r.Empty.EENTERs)
	}
	if r.Empty.EEXITs < 620 || r.Empty.EEXITs > 740 {
		t.Errorf("empty EEXITs = %d, want ~680", r.Empty.EEXITs)
	}
	if r.Empty.AEXs < 45_000 || r.Empty.AEXs > 55_000 {
		t.Errorf("empty AEXs = %d, want ~50k", r.Empty.AEXs)
	}
	// Per-UE transition delta ~90.
	for _, kind := range paka.Kinds() {
		if d := r.PerUE[kind]; d < 80 || d > 100 {
			t.Errorf("%s per-UE EENTER delta = %d, want ~90", kind, d)
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Empty workload") {
		t.Fatal("render missing empty workload")
	}
}

func TestE2EShare(t *testing.T) {
	cfg := quick
	cfg.Iterations = 25
	r, err := E2E(context.Background(), cfg)
	if err != nil {
		t.Fatalf("E2E: %v", err)
	}
	if r.SGX.Median < 20*time.Millisecond || r.SGX.Median > 120*time.Millisecond {
		t.Errorf("SGX session setup = %v, want the paper's ~62 ms regime", r.SGX.Median)
	}
	if r.SGXDelta <= 0 {
		t.Fatal("SGX delta not positive")
	}
	if r.SGXShare < 0.01 || r.SGXShare > 0.15 {
		t.Errorf("SGX share = %.2f%%, want a small fraction (~5.58%%)", r.SGXShare*100)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "62.38") {
		t.Fatal("render missing paper reference")
	}
}

func TestOTA(t *testing.T) {
	r, err := OTA(context.Background(), quick)
	if err != nil {
		t.Fatalf("OTA: %v", err)
	}
	if !r.Registered || !r.DataEcho {
		t.Fatalf("OTA result = %+v", r)
	}
	if r.GUTI == "" || r.UEAddress == "" {
		t.Fatal("missing GUTI or UE address")
	}
	if len(r.Steps) < 6 {
		t.Fatalf("steps = %d", len(r.Steps))
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "OnePlus 8") {
		t.Fatal("render missing device")
	}
}

func TestStaticTablesRender(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf)
	Table4(&buf)
	Table5(&buf)
	out := buf.String()
	for _, want := range []string{"Table I", "Table IV", "Table V", "eUDM", "Xeon", "KI"} {
		if !strings.Contains(out, want) {
			t.Errorf("static tables missing %q", want)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	if c.iterations() != 500 {
		t.Fatalf("default iterations = %d", c.iterations())
	}
	c.Iterations = 10
	if c.iterations() != 10 {
		t.Fatalf("iterations = %d", c.iterations())
	}
}
