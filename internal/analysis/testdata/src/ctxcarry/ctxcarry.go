// Package ctxcarry is a shieldlint fixture for the context-threading
// analyzer in a library package, where there is no top level: every
// fresh root context is a dropped request context.
package ctxcarry

import "context"

var root = context.Background() // want "context.Background below the top level"

func fetch(ctx context.Context, name string) error {
	_ = ctx
	_ = name
	return nil
}

func second(name string, ctx context.Context) error { // want "context.Context must be the first parameter"
	return fetch(ctx, name)
}

func detached() error {
	ctx := context.Background() // want "context.Background below the top level"
	return fetch(ctx, "x")
}

func todo() error {
	return fetch(context.TODO(), "x") // want "context.TODO below the top level"
}

func nilCtx() error {
	return fetch(nil, "x") // want "nil context passed"
}

func threaded(ctx context.Context) error {
	return fetch(ctx, "ok")
}

func annotated() context.Context {
	//shieldlint:ignore ctxcarry fixture exercises the escape hatch
	return context.Background() // want:suppressed "context.Background below the top level"
}
