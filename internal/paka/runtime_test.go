package paka

import (
	"context"
	"errors"
	"sort"
	"sync"
	"testing"

	"shield5g/internal/costmodel"
	"shield5g/internal/simclock"
)

// TestNativeRuntimeServeShutdownRace drives concurrent requests against a
// runtime being shut down (run under -race): every outcome must be either
// a clean Breakdown or errStopped, never a torn state or a data race.
func TestNativeRuntimeServeShutdownRace(t *testing.T) {
	env := costmodel.NewEnv(nil, 11, nil)
	rt := newNativeRuntime(env)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := simclock.WithJitter(context.Background(), simclock.NewJitter(uint64(w)+1))
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, err := rt.ServeRequest(ctx, 40, 80, func(ex Exec) error {
					ex.Compute(10_000)
					return nil
				})
				if err != nil && !errors.Is(err, errStopped) {
					t.Errorf("worker %d: unexpected error %v", w, err)
					return
				}
			}
		}(w)
	}
	rt.Shutdown()
	close(stop)
	wg.Wait()

	if _, err := rt.ServeRequest(context.Background(), 10, 10, func(Exec) error { return nil }); !errors.Is(err, errStopped) {
		t.Fatalf("ServeRequest after Shutdown = %v, want errStopped", err)
	}
	if _, err := rt.OpenSession(context.Background()); !errors.Is(err, errStopped) {
		t.Fatalf("OpenSession after Shutdown = %v, want errStopped", err)
	}
	if err := rt.Do(context.Background(), func(Exec) error { return nil }); !errors.Is(err, errStopped) {
		t.Fatalf("Do after Shutdown = %v, want errStopped", err)
	}
}

// TestNativeRuntimeWarmupChargedOnce races P cold requests: exactly one
// of them must absorb the first-request warm-up (lazy library loading +
// TLS handshake), never zero, never more than one.
func TestNativeRuntimeWarmupChargedOnce(t *testing.T) {
	env := costmodel.NewEnv(nil, 17, nil)
	rt := newNativeRuntime(env)

	const workers = 8
	totals := make([]simclock.Cycles, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			acct := &simclock.Account{}
			ctx := simclock.WithAccount(context.Background(), acct)
			ctx = simclock.WithJitter(ctx, simclock.NewJitter(uint64(w)+1))
			if _, err := rt.ServeRequest(ctx, 40, 80, func(Exec) error { return nil }); err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			totals[w] = acct.Total()
		}(w)
	}
	wg.Wait()

	// The warm-up block (2M cycles + the server TLS handshake) dwarfs the
	// jig variance (0–2 extra ~1.4k-cycle syscalls) between warm requests.
	sorted := append([]simclock.Cycles(nil), totals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	threshold := sorted[0] + nativeWarmupCycles/2
	var warmed int
	for _, total := range totals {
		if total > threshold {
			warmed++
		}
	}
	if warmed != 1 {
		t.Fatalf("warm-up charged to %d requests, want exactly 1 (totals %v)", warmed, totals)
	}
}

// TestNativeSessionMirrorsGramineContract checks the native keep-alive
// split: a session request pays only the per-request census, the
// Pre/handshake at open and Post at close — so the native/SGX comparison
// stays fair in batched mode.
func TestNativeSessionMirrorsGramineContract(t *testing.T) {
	env := costmodel.NewEnv(nil, 23, nil)
	rt := newNativeRuntime(env)

	// Warm the runtime outside the measured window.
	if _, err := rt.ServeRequest(context.Background(), 40, 80, func(Exec) error { return nil }); err != nil {
		t.Fatalf("warm: %v", err)
	}

	measure := func(f func(ctx context.Context) error) simclock.Cycles {
		acct := &simclock.Account{}
		ctx := simclock.WithAccount(context.Background(), acct)
		ctx = simclock.WithJitter(ctx, simclock.NewJitter(5))
		if err := f(ctx); err != nil {
			t.Fatalf("measure: %v", err)
		}
		return acct.Total()
	}

	full := measure(func(ctx context.Context) error {
		_, err := rt.ServeRequest(ctx, 40, 80, func(Exec) error { return nil })
		return err
	})

	var sess RuntimeSession
	open := measure(func(ctx context.Context) (err error) {
		sess, err = rt.OpenSession(ctx)
		return err
	})
	serve := measure(func(ctx context.Context) error {
		_, err := sess.Serve(ctx, 40, 80, func(Exec) error { return nil })
		return err
	})
	closeCost := measure(func(ctx context.Context) error { return sess.Close(ctx) })

	if serve >= full {
		t.Fatalf("session request (%d cycles) not cheaper than full request (%d)", serve, full)
	}
	if open == 0 || closeCost == 0 {
		t.Fatalf("open/close should charge the amortized machinery, got %d/%d", open, closeCost)
	}
	// Identical jitter streams make the split exact: the session path
	// re-arranges the warm full request's charges and adds exactly one
	// per-connection TLS handshake (which the warm full path never pays).
	if got, want := open+serve+closeCost, full+env.Model.TLSHandshakeServer; got != want {
		t.Fatalf("open+serve+close = %d, want full %d + handshake = %d", got, full, want)
	}

	if _, err := sess.Serve(context.Background(), 10, 10, func(Exec) error { return nil }); !errors.Is(err, errStopped) {
		t.Fatalf("Serve on closed session = %v, want errStopped", err)
	}
}

// TestNativeDoBatchChargesCaller pins the Do/DoBatch account contract.
func TestNativeDoBatchChargesCaller(t *testing.T) {
	env := costmodel.NewEnv(nil, 29, nil)
	rt := newNativeRuntime(env)
	acct := &simclock.Account{}
	ctx := simclock.WithAccount(context.Background(), acct)
	if err := rt.DoBatch(ctx, 640, 1280, func(ex Exec) error {
		for i := 0; i < 8; i++ {
			ex.Compute(50_000)
		}
		return nil
	}); err != nil {
		t.Fatalf("DoBatch: %v", err)
	}
	if acct.Total() < 8*50_000 {
		t.Fatalf("DoBatch charged %d cycles to caller, want ≥ %d", acct.Total(), 8*50_000)
	}
}
