package sev

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"shield5g/internal/costmodel"
	"shield5g/internal/simclock"
)

func testMachine(t *testing.T) *Machine {
	t.Helper()
	env := costmodel.NewEnv(nil, 3, nil)
	m, err := Launch(context.Background(), env, Config{Name: "eudm-vm", AppImageBytes: 2_620_000_000})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	t.Cleanup(m.Stop)
	return m
}

func TestLaunchValidation(t *testing.T) {
	env := costmodel.NewEnv(nil, 3, nil)
	if _, err := Launch(context.Background(), nil, Config{Name: "x"}); err == nil {
		t.Fatal("nil env accepted")
	}
	if _, err := Launch(context.Background(), env, Config{}); err == nil {
		t.Fatal("unnamed machine accepted")
	}
}

func TestLaunchFasterThanEnclaveBuild(t *testing.T) {
	m := testMachine(t)
	d := m.LoadDuration()
	// SEV needs no per-page EADD/EEXTEND or GSC hashing: launch is
	// seconds, not the SGX near-minute.
	if d < time.Second || d > 20*time.Second {
		t.Fatalf("load duration = %v, want a few seconds", d)
	}
}

func TestLaunchChargesAccount(t *testing.T) {
	env := costmodel.NewEnv(nil, 3, nil)
	var acct simclock.Account
	ctx := simclock.WithAccount(context.Background(), &acct)
	m, err := Launch(ctx, env, Config{Name: "vm", AppImageBytes: 1})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	defer m.Stop()
	if acct.Total() == 0 {
		t.Fatal("launch charged nothing")
	}
}

func TestServeRequestNoTransitionsFewVMExits(t *testing.T) {
	m := testMachine(t)
	if _, err := m.ServeRequest(context.Background(), 40, 80, func(Exec) error { return nil }); err != nil {
		t.Fatalf("warm ServeRequest: %v", err)
	}
	before := m.VMExits()
	bd, err := m.ServeRequest(context.Background(), 40, 80, func(ex Exec) error {
		ex.Compute(100_000)
		ex.Touch(4096)
		return nil
	})
	if err != nil {
		t.Fatalf("ServeRequest: %v", err)
	}
	exits := m.VMExits() - before
	if exits != vmExitsPerRequest {
		t.Fatalf("VM exits per request = %d, want %d", exits, vmExitsPerRequest)
	}
	if bd.Functional == 0 || bd.Functional >= bd.Total || bd.Total >= bd.ServerSide {
		t.Fatalf("breakdown nesting violated: %+v", bd)
	}
}

func TestServeRequestHandlerError(t *testing.T) {
	m := testMachine(t)
	sentinel := errors.New("boom")
	if _, err := m.ServeRequest(context.Background(), 1, 1, func(Exec) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestInitialRequestSlower(t *testing.T) {
	m := testMachine(t)
	serve := func() simclock.Cycles {
		var acct simclock.Account
		ctx := simclock.WithAccount(context.Background(), &acct)
		if _, err := m.ServeRequest(ctx, 40, 80, func(Exec) error { return nil }); err != nil {
			t.Fatalf("ServeRequest: %v", err)
		}
		return acct.Total()
	}
	first := serve()
	if !m.Warm() {
		t.Fatal("not warm")
	}
	second := serve()
	if first <= second {
		t.Fatal("initial request not slower")
	}
}

func TestTCBIncludesGuestStack(t *testing.T) {
	m := testMachine(t)
	if m.TCBBytes() <= m.cfg.AppImageBytes {
		t.Fatal("TCB does not include guest kernel/userland")
	}
}

func TestSecretsAndIntrospection(t *testing.T) {
	m := testMachine(t)
	secret := []byte("subscriber-key-material")
	if err := m.Do(context.Background(), func(ex Exec) error {
		ex.StoreSecret("k", secret)
		got, ok := ex.LoadSecret("k")
		if !ok || !bytes.Equal(got, secret) {
			t.Error("in-guest read failed")
		}
		if _, ok := ex.LoadSecret("missing"); ok {
			t.Error("missing secret found")
		}
		return nil
	}); err != nil {
		t.Fatalf("Do: %v", err)
	}
	view, ok := m.Introspect("k")
	if !ok {
		t.Fatal("Introspect found nothing")
	}
	if bytes.Equal(view, secret) || bytes.Contains(view, []byte("subscriber")) {
		t.Fatal("host view leaked plaintext")
	}
	if _, ok := m.Introspect("missing"); ok {
		t.Fatal("Introspect invented a region")
	}
	m.Stop()
	if _, ok := m.Introspect("k"); ok {
		t.Fatal("secret survived teardown")
	}
}

func TestStoppedMachineRejectsUse(t *testing.T) {
	m := testMachine(t)
	m.Stop()
	if _, err := m.ServeRequest(context.Background(), 1, 1, func(Exec) error { return nil }); !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v", err)
	}
	if err := m.Do(context.Background(), func(Exec) error { return nil }); !errors.Is(err, ErrStopped) {
		t.Fatalf("Do err = %v", err)
	}
	if _, err := m.GenerateReport([64]byte{}); !errors.Is(err, ErrStopped) {
		t.Fatalf("report err = %v", err)
	}
}

func TestAttestationReport(t *testing.T) {
	m := testMachine(t)
	var data [64]byte
	copy(data[:], "nonce")
	r, err := m.GenerateReport(data)
	if err != nil {
		t.Fatalf("GenerateReport: %v", err)
	}
	if err := VerifyReport(m.SigningKey(), r); err != nil {
		t.Fatalf("VerifyReport: %v", err)
	}
	r.MachineName = "impostor"
	if err := VerifyReport(m.SigningKey(), r); err == nil {
		t.Fatal("tampered report verified")
	}
	if err := VerifyReport(m.SigningKey(), nil); err == nil {
		t.Fatal("nil report verified")
	}
}

func TestMeasurementDeterministic(t *testing.T) {
	env := costmodel.NewEnv(nil, 3, nil)
	a, err := Launch(context.Background(), env, Config{Name: "vm", AppImageBytes: 7})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	defer a.Stop()
	b, err := Launch(context.Background(), env, Config{Name: "vm", AppImageBytes: 7})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	defer b.Stop()
	if a.Measurement() != b.Measurement() {
		t.Fatal("same config, different measurements")
	}
	c, err := Launch(context.Background(), env, Config{Name: "vm2", AppImageBytes: 7})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	defer c.Stop()
	if a.Measurement() == c.Measurement() {
		t.Fatal("different config, same measurement")
	}
	if a.Name() != "vm" {
		t.Fatal("name accessor wrong")
	}
}
