package paka

// SBI endpoint paths exposed by the P-AKA modules.
const (
	PathUDMGenerateAV      = "/eudm-paka/v1/generate-av"
	PathUDMGenerateAVBatch = "/eudm-paka/v1/generate-av-batch"
	PathUDMResync          = "/eudm-paka/v1/resync"
	PathAUSFDeriveSE       = "/eausf-paka/v1/derive-se"
	PathAMFDeriveKAMF      = "/eamf-paka/v1/derive-kamf"
)

// UDMGenerateAVRequest asks the eUDM P-AKA module for a Home Environment
// authentication vector. The subscriber's long-term key K never crosses
// this boundary: it is provisioned into the module (sealed, when running
// in SGX) and looked up by SUPI. OPc, RAND, SQN and AMFid are the enclave
// inputs of the paper's Table I.
type UDMGenerateAVRequest struct {
	SUPI  string `json:"supi"`
	OPc   []byte `json:"opc"`   // 16 bytes
	RAND  []byte `json:"rand"`  // 16 bytes
	SQN   []byte `json:"sqn"`   // 6 bytes
	AMFID []byte `json:"amfid"` // 2 bytes (authentication management field)
	SNN   string `json:"snn"`   // serving network name for KAUSF/XRES*
}

// UDMGenerateAVResponse is the HE AV material: the enclave outputs of
// Table I.
type UDMGenerateAVResponse struct {
	RAND     []byte `json:"rand"`      // 16 bytes
	AUTN     []byte `json:"autn"`      // 16 bytes
	XRESStar []byte `json:"xres_star"` // 16 bytes
	KAUSF    []byte `json:"kausf"`     // 32 bytes
}

// UDMGenerateAVBatchRequest asks the eUDM module for several HE AVs in
// one boundary crossing — the AV precomputation pool's refill unit. Each
// item carries its own UDR-advanced SQN and fresh RAND, so the pooled
// vectors stay individually consumable in sequence-number order.
type UDMGenerateAVBatchRequest struct {
	Items []UDMGenerateAVRequest `json:"items"`
}

// UDMGenerateAVBatchResponse carries one vector per requested item, in
// request order.
type UDMGenerateAVBatchResponse struct {
	Vectors []UDMGenerateAVResponse `json:"vectors"`
}

// UDMResyncRequest asks the eUDM module to verify an AUTS
// resynchronisation token and recover the UE's sequence number
// (TS 33.102 §6.3.5, executed inside the enclave because it uses K).
type UDMResyncRequest struct {
	SUPI string `json:"supi"`
	OPc  []byte `json:"opc"`
	RAND []byte `json:"rand"`
	AUTS []byte `json:"auts"` // SQN_MS^AK* (6) || MAC-S (8)
}

// UDMResyncResponse returns the recovered UE sequence number.
type UDMResyncResponse struct {
	SQNMS []byte `json:"sqn_ms"` // 6 bytes
}

// AUSFDeriveSERequest asks the eAUSF P-AKA module to turn the HE AV into
// Security Edge AV material.
type AUSFDeriveSERequest struct {
	RAND     []byte `json:"rand"`      // 16 bytes
	XRESStar []byte `json:"xres_star"` // 16 bytes
	KAUSF    []byte `json:"kausf"`     // 32 bytes
	SNN      string `json:"snn"`
}

// AUSFDeriveSEResponse carries HXRES* and the anchor key K_SEAF.
type AUSFDeriveSEResponse struct {
	HXRESStar []byte `json:"hxres_star"` // 16 bytes (TS 33.501; paper lists 8)
	KSEAF     []byte `json:"kseaf"`      // 32 bytes
}

// AMFDeriveKAMFRequest asks the eAMF P-AKA module for K_AMF.
type AMFDeriveKAMFRequest struct {
	KSEAF []byte `json:"kseaf"` // 32 bytes
	SUPI  string `json:"supi"`
	ABBA  []byte `json:"abba"`
}

// AMFDeriveKAMFResponse carries the derived K_AMF.
type AMFDeriveKAMFResponse struct {
	KAMF []byte `json:"kamf"` // 32 bytes
}
