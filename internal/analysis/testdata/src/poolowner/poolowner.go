// Package poolowner is a shieldlint fixture for the pooled-ownership
// analyzer: sbi bodies and hashpool states must be released exactly
// once on every path, never used after release, and loaned handler
// views must not escape. The interprocedural cases (ownership transfer
// through a releasing helper, pooled results through a wrapper) ride on
// the call-graph summary store.
package poolowner

import (
	"context"
	"errors"

	"shield5g/internal/crypto/hashpool"
	"shield5g/internal/sbi"
)

var errTooBig = errors.New("too big")

// use borrows the body: its summary proves it neither releases nor
// stores it, so callers keep ownership across the call.
func use(b []byte) int { return len(b) }

// --- clean baselines: no findings expected ---

func cleanRoundTrip(v any) error {
	body, err := sbi.MarshalBody(v)
	if err != nil {
		return err
	}
	defer sbi.ReleaseBody(body)
	use(body)
	return nil
}

func cleanDigest(data []byte) []byte {
	h := hashpool.GetSHA256()
	h.Write(data)
	out := h.Sum(nil)
	hashpool.PutSHA256(h)
	return out
}

func resliceClean(v any) {
	body, err := sbi.MarshalBody(v)
	if err != nil {
		return
	}
	body = body[:0]
	sbi.ReleaseBody(body)
}

// storeGlobal hands the body to package-level state: ownership leaves
// the function, tracking stops, and no finding is reported.
var sink []byte

func storeGlobal(v any) {
	body, err := sbi.MarshalBody(v)
	if err != nil {
		return
	}
	sink = body
}

// --- use after release ---

func useAfterRelease(v any) int {
	body, err := sbi.MarshalBody(v)
	if err != nil {
		return 0
	}
	sbi.ReleaseBody(body)
	return use(body) // want "use after release"
}

func aliasUseAfter(data []byte) {
	h := hashpool.GetSHA256()
	g := h
	hashpool.PutSHA256(g)
	h.Write(data) // want "use after release"
}

// loopUseAfter releases inside a loop: the second iteration touches and
// re-releases a dead object, and the zero-iteration path leaks it.
func loopUseAfter(v any, n int) {
	body, err := sbi.MarshalBody(v)
	if err != nil {
		return
	}
	for i := 0; i < n; i++ {
		use(body)             // want "use after release"
		sbi.ReleaseBody(body) // want "double release"
	}
} // want "released on some paths"

// --- double release ---

func doubleRelease(v any) {
	body, err := sbi.MarshalBody(v)
	if err != nil {
		return
	}
	sbi.ReleaseBody(body)
	sbi.ReleaseBody(body) // want "double release"
}

func deferredDoubleRelease(v any) error {
	body, err := sbi.MarshalBody(v)
	if err != nil {
		return err
	}
	defer sbi.ReleaseBody(body)
	use(body)
	sbi.ReleaseBody(body) // want "double release"
	return nil
}

// --- missing release on early-return / error paths ---

func missingOnErrorPath(v any, n int) error {
	body, err := sbi.MarshalBody(v)
	if err != nil {
		return err // the err != nil branch owns nothing: no finding here
	}
	if n > 0 {
		return errTooBig // want "missing release"
	}
	sbi.ReleaseBody(body)
	return nil
}

func releasedOnSomePaths(v any, ok bool) {
	body, err := sbi.MarshalBody(v)
	if err != nil {
		return
	}
	if ok {
		sbi.ReleaseBody(body)
	}
} // want "released on some paths"

func hashLeak(key []byte) {
	m := hashpool.GetHMAC(key)
	m.Write(key)
} // want "missing release"

func discarded(v any) {
	sbi.MarshalBody(v) // want "leaked acquisition"
}

// suppressedLeak demonstrates the sanctioned escape hatch: the
// annotation keeps the finding (as suppressed) so the load-bearing test
// can verify it.
func suppressedLeak(v any) {
	body, _ := sbi.MarshalBody(v)
	use(body)
	//shieldlint:ignore poolowner fixture exercises annotation suppression
} // want:suppressed "missing release"

// --- interprocedural: ownership transfer through a callee summary ---

// finish consumes the body: it releases its parameter on every path, so
// callers transfer ownership at the call site.
func finish(body []byte) int {
	n := len(body)
	sbi.ReleaseBody(body)
	return n
}

func cleanTransfer(v any) int {
	body, err := sbi.MarshalBody(v)
	if err != nil {
		return 0
	}
	return finish(body)
}

func transferThenUse(v any) int {
	body, err := sbi.MarshalBody(v)
	if err != nil {
		return 0
	}
	n := finish(body)
	return n + use(body) // want "use after release"
}

func transferThenRelease(v any) {
	body, err := sbi.MarshalBody(v)
	if err != nil {
		return
	}
	finish(body)
	sbi.ReleaseBody(body) // want "double release"
}

// --- interprocedural: pooled results through a wrapper ---

// marshalWrapped forwards a fresh pooled body to its caller; its
// summary marks result 0 as pooled, so callers inherit the release
// obligation.
func marshalWrapped(v any) ([]byte, error) {
	return sbi.MarshalBody(v)
}

func wrapperClean(v any) error {
	body, err := marshalWrapped(v)
	if err != nil {
		return err
	}
	defer sbi.ReleaseBody(body)
	use(body)
	return nil
}

func wrapperLeak(v any, n int) error {
	body, err := marshalWrapped(v)
	if err != nil {
		return err
	}
	if n > 0 {
		return errTooBig // want "missing release"
	}
	sbi.ReleaseBody(body)
	return nil
}

// --- loaned views: handler bodies and BinHandler requests ---

var stash []byte

func register(srv *sbi.Server, ch chan []byte) {
	srv.Handle("/echo", echoLoan)
	srv.HandleDual("/stash", stashLoan)
	srv.Handle("/go", goLoan)
	srv.Handle("/release", releaseLoan)
	srv.Handle("/ok", okHandler)
	srv.Handle("/chan", func(ctx context.Context, body []byte) ([]byte, error) {
		ch <- body // want "escapes via channel send"
		return nil, nil
	})
}

func echoLoan(ctx context.Context, body []byte) ([]byte, error) {
	return body, nil // want "must not be returned"
}

func stashLoan(ctx context.Context, body []byte) ([]byte, error) {
	stash = body // want "escapes via store"
	return nil, nil
}

func goLoan(ctx context.Context, body []byte) ([]byte, error) {
	go use(body) // want "escapes into a goroutine"
	return nil, nil
}

func releaseLoan(ctx context.Context, body []byte) ([]byte, error) {
	sbi.ReleaseBody(body) // want "must not be released by the handler"
	return nil, nil
}

// okHandler owns its response body and hands it to the transport: the
// loan is only read, never retained.
func okHandler(ctx context.Context, body []byte) ([]byte, error) {
	out, err := sbi.MarshalBody(use(body))
	if err != nil {
		return nil, err
	}
	return out, nil
}

// --- BinHandler: the typed request struct is a loaned decode view ---

type binReq struct{ Data []byte }
type binResp struct{ N int }

func registerBin() (sbi.HandlerFunc, sbi.HandlerFunc) {
	return sbi.BinHandler(escapingBinHandler), sbi.BinHandler(cleanBinHandler)
}

func escapingBinHandler(ctx context.Context, req *binReq) (*binReq, error) {
	return req, nil // want "must not be returned"
}

func cleanBinHandler(ctx context.Context, req *binReq) (*binResp, error) {
	return &binResp{N: len(req.Data)}, nil
}
