package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder derives the partial order in which the program acquires its
// mutexes — the per-shard admission gates, AV-pool locks, router and
// topology maps of the PR 8 sharded fleet — and reports any cycle: two
// locks taken in opposite orders on different paths deadlock the fleet
// the first time the paths interleave. Locks are identified by their
// declaration site (package-level variable, or struct type plus field),
// so every shard instance of a striped lock shares one identity; the
// analysis looks one call-graph level deep by consuming each callee's
// direct-acquisition summary at the call site.
//
// Deliberate over-approximation trades, chosen so the repo-wide gate
// stays false-positive-free: acquiring the same lock identity on two
// different receivers (two distinct shards) is not an edge, and a
// callee re-acquiring the caller's held identity is not reported —
// both patterns are how the sharded fleet legitimately nests. Only a
// same-identity, same-receiver re-acquisition in one function body is
// reported directly (guaranteed self-deadlock).
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "mutex acquisitions must follow one global partial order: cycles and inconsistent nesting deadlock the sharded fleet",
	Run:  runLockOrder,
}

// lockAcq is one direct acquisition inside a function, for the
// per-function summary consumed one call level up.
type lockAcq struct {
	token string
	pos   token.Pos
}

// lockSummary is the fact published per function: the lock identities
// the body acquires directly (nested function literals excluded).
type lockSummary struct {
	acquired []lockAcq
}

// lockEdge records "to was acquired while from was held", with the
// acquisition (or call) site that created the edge.
type lockEdge struct {
	from, to string
	pos      token.Pos
	pkg      *Package
	// via names the callee when the edge crosses a call boundary.
	via string
}

type lockOrderResult struct{ findings []ownerFinding }

func runLockOrder(pass *Pass) error {
	res := pass.Prog.Memo("lockorder", func() any {
		return computeLockOrder(pass.Prog)
	}).(*lockOrderResult)
	for _, f := range res.findings {
		if f.pkg == pass.Pkg {
			pass.Reportf(f.pos, "%s", f.msg)
		}
	}
	return nil
}

func computeLockOrder(prog *Program) *lockOrderResult {
	cg := prog.CallGraph()
	facts := prog.Facts("lockorder")
	for _, n := range cg.Functions() {
		facts.Set(n, directAcquisitions(n))
	}

	lo := &lockOrderPass{
		facts: facts,
		cg:    cg,
		edges: make(map[[2]string]*lockEdge),
	}
	for _, n := range cg.Functions() {
		w := &lockWalker{lo: lo, node: n, info: n.Pkg.Info}
		w.walkStmts(nil, n.Body.List)
	}
	lo.reportCycles()
	return &lockOrderResult{findings: lo.findings}
}

type lockOrderPass struct {
	facts    *FactStore
	cg       *CallGraph
	edges    map[[2]string]*lockEdge // first witness per ordered pair
	findings []ownerFinding
}

func (lo *lockOrderPass) addEdge(from, to string, pos token.Pos, pkg *Package, via string) {
	key := [2]string{from, to}
	if _, ok := lo.edges[key]; !ok {
		lo.edges[key] = &lockEdge{from: from, to: to, pos: pos, pkg: pkg, via: via}
	}
}

// heldLock is one entry of the walker's lock stack.
type heldLock struct {
	token string
	recv  string // receiver expression text, for instance identity
	pos   token.Pos
}

type lockWalker struct {
	lo   *lockOrderPass
	node *CallNode
	info *types.Info
}

// walkStmts threads the held-lock stack through a statement list.
// Branch bodies run on a copy of the stack and their effects do not
// propagate past the branch: an unbalanced branch-local acquisition
// contributes its edges but never poisons the straight-line state (the
// fewer-edges direction of approximation, chosen against false cycles).
func (w *lockWalker) walkStmts(held []heldLock, stmts []ast.Stmt) []heldLock {
	for _, s := range stmts {
		held = w.walkStmt(held, s)
	}
	return held
}

func (w *lockWalker) walkStmt(held []heldLock, s ast.Stmt) []heldLock {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.walkStmts(held, s.List)
	case *ast.IfStmt:
		if s.Init != nil {
			held = w.walkStmt(held, s.Init)
		}
		held = w.scanCalls(held, s.Cond)
		w.walkStmt(cloneHeld(held), s.Body)
		if s.Else != nil {
			w.walkStmt(cloneHeld(held), s.Else)
		}
		return held
	case *ast.ForStmt:
		if s.Init != nil {
			held = w.walkStmt(held, s.Init)
		}
		held = w.scanCalls(held, s.Cond)
		inner := w.walkStmt(cloneHeld(held), s.Body)
		if s.Post != nil {
			w.walkStmt(inner, s.Post)
		}
		return held
	case *ast.RangeStmt:
		held = w.scanCalls(held, s.X)
		w.walkStmt(cloneHeld(held), s.Body)
		return held
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = w.walkStmt(held, s.Init)
		}
		held = w.scanCalls(held, s.Tag)
		w.walkClauses(held, s.Body)
		return held
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held = w.walkStmt(held, s.Init)
		}
		w.walkClauses(held, s.Body)
		return held
	case *ast.SelectStmt:
		w.walkClauses(held, s.Body)
		return held
	case *ast.LabeledStmt:
		return w.walkStmt(held, s.Stmt)
	case *ast.DeferStmt:
		// Deferred unlocks run at exit: the lock stays held for the
		// rest of the body, which is exactly the effect of not
		// processing the deferred call. Deferred acquisitions (and
		// deferred calls that lock) are out of scope.
		return held
	case *ast.ExprStmt:
		return w.scanCalls(held, s.X)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			held = w.scanCalls(held, r)
		}
		return held
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			held = w.scanCalls(held, r)
		}
		return held
	case *ast.GoStmt:
		// The goroutine starts with an empty lock stack of its own.
		return held
	default:
		return held
	}
}

func (w *lockWalker) walkClauses(held []heldLock, body *ast.BlockStmt) {
	for _, cs := range body.List {
		switch cs := cs.(type) {
		case *ast.CaseClause:
			w.walkStmts(cloneHeld(held), cs.Body)
		case *ast.CommClause:
			inner := cloneHeld(held)
			if cs.Comm != nil {
				inner = w.walkStmt(inner, cs.Comm)
			}
			w.walkStmts(inner, cs.Body)
		}
	}
}

func cloneHeld(held []heldLock) []heldLock {
	return append([]heldLock(nil), held...)
}

// scanCalls processes every call expression under e in source order,
// updating the held stack. Function literals are skipped: they are
// their own call-graph nodes and run under their caller's (unknown)
// lock context.
func (w *lockWalker) scanCalls(held []heldLock, e ast.Expr) []heldLock {
	if e == nil {
		return held
	}
	ast.Inspect(e, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := x.(*ast.CallExpr); ok {
			held = w.processCall(held, call)
		}
		return true
	})
	return held
}

func (w *lockWalker) processCall(held []heldLock, call *ast.CallExpr) []heldLock {
	fn := staticCallee(w.info, call)
	if fn == nil {
		return held
	}

	if op, ok := mutexOp(fn); ok {
		tok, recv, ok := w.lockTokenOf(call)
		if !ok {
			return held
		}
		switch op {
		case "Lock", "RLock":
			for _, h := range held {
				if h.token != tok {
					continue
				}
				if h.recv == recv {
					w.lo.findings = append(w.lo.findings, ownerFinding{
						pkg: w.node.Pkg,
						pos: call.Pos(),
						msg: fmt.Sprintf("recursive lock: %s is already held by this function (locked at %s); acquiring it again self-deadlocks",
							lockDisplay(tok), w.shortPos(h.pos)),
					})
				}
				// Same identity on a different receiver (two shards of
				// a striped lock): neither an edge nor a report.
				return held
			}
			for _, h := range held {
				w.lo.addEdge(h.token, tok, call.Pos(), w.node.Pkg, "")
			}
			return append(held, heldLock{token: tok, recv: recv, pos: call.Pos()})
		case "Unlock", "RUnlock":
			for i := len(held) - 1; i >= 0; i-- {
				if held[i].token == tok && held[i].recv == recv {
					return append(held[:i:i], held[i+1:]...)
				}
			}
			return held
		}
		return held
	}

	// One call-graph level: edges from every held lock to the callee's
	// direct acquisitions, skipping same-identity re-acquisition (the
	// documented sharded-nesting suppression).
	if len(held) == 0 {
		return held
	}
	node := w.lo.cg.NodeOf(fn.Origin())
	if node == nil {
		return held
	}
	fact, ok := w.lo.facts.Get(node)
	if !ok {
		return held
	}
	for _, acq := range fact.(*lockSummary).acquired {
		for _, h := range held {
			if h.token != acq.token {
				w.lo.addEdge(h.token, acq.token, call.Pos(), w.node.Pkg, fn.Name())
			}
		}
	}
	return held
}

func (w *lockWalker) shortPos(pos token.Pos) string {
	p := w.node.Pkg.Fset.Position(pos)
	base := p.Filename
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	return fmt.Sprintf("%s:%d", base, p.Line)
}

// mutexOp classifies fn as a sync.Mutex/RWMutex lock operation.
func mutexOp(fn *types.Func) (string, bool) {
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || (n.Obj().Name() != "Mutex" && n.Obj().Name() != "RWMutex") {
		return "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return fn.Name(), true
	}
	return "", false
}

// lockTokenOf derives the declaration-site identity of the mutex a
// Lock/Unlock call operates on, plus the receiver expression text for
// instance discrimination.
func (w *lockWalker) lockTokenOf(call *ast.CallExpr) (tok, recv string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	return lockToken(w.info, sel.X)
}

// lockToken identifies a mutex expression by declaration site:
// pkg.Type.field for struct fields (one identity per field across all
// instances), pkg.var for package-level variables, pkg.Type.<embedded>
// for mutexes embedded in a named type. Locks held in plain local
// variables have no stable cross-function identity and return ok=false.
func lockToken(info *types.Info, e ast.Expr) (tok, recv string, ok bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, isVar := info.Uses[x].(*types.Var)
		if !isVar || v.Pkg() == nil {
			return "", "", false
		}
		if v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name(), "", true
		}
		// t.Lock() through a mutex embedded in a named local's type:
		// identify by the receiver's named type.
		if named := namedTypeOf(v.Type()); named != nil && named.Obj().Pkg() != nil {
			return named.Obj().Pkg().Path() + "." + named.Obj().Name() + ".<embedded>", x.Name, true
		}
		return "", "", false
	case *ast.SelectorExpr:
		f, isVar := info.Uses[x.Sel].(*types.Var)
		if !isVar {
			return "", "", false
		}
		if f.IsField() {
			if s, okSel := info.Selections[x]; okSel {
				if named := namedTypeOf(s.Recv()); named != nil && named.Obj().Pkg() != nil {
					return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + f.Name(), types.ExprString(x.X), true
				}
			}
			return "", "", false
		}
		// Qualified package-level var: pkg.mu.
		if f.Pkg() != nil && f.Parent() == f.Pkg().Scope() {
			return f.Pkg().Path() + "." + f.Name(), "", true
		}
		return "", "", false
	case *ast.IndexExpr:
		// stripes[i] as the lock expression: identify by the indexed
		// expression, discriminate instances by the full index text.
		tok, _, ok = lockToken(info, x.X)
		return tok, types.ExprString(x), ok
	default:
		return "", "", false
	}
}

func namedTypeOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if s, ok := t.(*types.Slice); ok {
		t = s.Elem()
	}
	if a, ok := t.(*types.Array); ok {
		t = a.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// directAcquisitions collects the lock identities a function body
// acquires directly, for the one-level call summary.
func directAcquisitions(n *CallNode) *lockSummary {
	sum := &lockSummary{}
	seen := make(map[string]bool)
	info := n.Pkg.Info
	ast.Inspect(n.Body, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := staticCallee(info, call)
		if fn == nil {
			return true
		}
		op, isOp := mutexOp(fn)
		if !isOp || (op != "Lock" && op != "RLock") {
			return true
		}
		sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !isSel {
			return true
		}
		if tok, _, ok := lockToken(info, sel.X); ok && !seen[tok] {
			seen[tok] = true
			sum.acquired = append(sum.acquired, lockAcq{token: tok, pos: call.Pos()})
		}
		return true
	})
	return sum
}

// lockDisplay shortens a token for messages: the import path collapses
// to its base element (shield5g/internal/sbi.Server.mu -> sbi.Server.mu).
func lockDisplay(tok string) string {
	if i := strings.LastIndexByte(tok, '/'); i >= 0 {
		return tok[i+1:]
	}
	return tok
}

// reportCycles runs Tarjan's SCC over the edge graph and reports every
// edge both of whose endpoints share a component: those are exactly the
// edges on some acquisition cycle.
func (lo *lockOrderPass) reportCycles() {
	nodes := make(map[string]bool)
	adj := make(map[string][]string)
	for key := range lo.edges {
		nodes[key[0]] = true
		nodes[key[1]] = true
		adj[key[0]] = append(adj[key[0]], key[1])
	}
	order := make([]string, 0, len(nodes))
	for n := range nodes {
		order = append(order, n)
	}
	sort.Strings(order)
	for n := range adj {
		sort.Strings(adj[n])
	}

	// Iterative Tarjan over the sorted node order.
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	comp := make(map[string]int)
	var stack []string
	next, ncomp := 0, 0

	type frame struct {
		v  string
		ei int
	}
	visit := func(root string) {
		frames := []frame{{v: root}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(adj[f.v]) {
				wv := adj[f.v][f.ei]
				f.ei++
				if _, seen := index[wv]; !seen {
					index[wv] = next
					low[wv] = next
					next++
					stack = append(stack, wv)
					onStack[wv] = true
					frames = append(frames, frame{v: wv})
				} else if onStack[wv] && index[wv] < low[f.v] {
					low[f.v] = index[wv]
				}
				continue
			}
			if low[f.v] == index[f.v] {
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[top] = false
					comp[top] = ncomp
					if top == f.v {
						break
					}
				}
				ncomp++
			}
			done := *f
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[done.v] < low[p.v] {
					low[p.v] = low[done.v]
				}
			}
		}
	}
	for _, n := range order {
		if _, seen := index[n]; !seen {
			visit(n)
		}
	}

	compSize := make(map[int]int)
	for _, c := range comp {
		compSize[c]++
	}

	keys := make([][2]string, 0, len(lo.edges))
	for k := range lo.edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		e := lo.edges[k]
		if e.from == e.to || comp[e.from] != comp[e.to] {
			continue
		}
		via := ""
		if e.via != "" {
			via = fmt.Sprintf(" (through the call to %s)", e.via)
		}
		if compSize[comp[e.from]] == 2 {
			other := lo.edges[[2]string{e.to, e.from}]
			otherPos := "elsewhere"
			if other != nil {
				p := other.pkg.Fset.Position(other.pos)
				base := p.Filename
				if i := strings.LastIndexByte(base, '/'); i >= 0 {
					base = base[i+1:]
				}
				otherPos = fmt.Sprintf("%s:%d", base, p.Line)
			}
			lo.findings = append(lo.findings, ownerFinding{
				pkg: e.pkg,
				pos: e.pos,
				msg: fmt.Sprintf("inconsistent lock nesting: %s is acquired while holding %s here%s, but the opposite order occurs at %s; pick one order",
					lockDisplay(e.to), lockDisplay(e.from), via, otherPos),
			})
		} else {
			lo.findings = append(lo.findings, ownerFinding{
				pkg: e.pkg,
				pos: e.pos,
				msg: fmt.Sprintf("lock-order cycle: acquiring %s while holding %s%s closes a cycle of %d locks; acquire them in one global order",
					lockDisplay(e.to), lockDisplay(e.from), via, compSize[comp[e.from]]),
			})
		}
	}
}
