// Package costmodel defines the cycle-cost model of the simulated testbed.
//
// The paper measures its system on a Dell PowerEdge R450 with two SGXv2
// Xeon Silver 4314 CPUs at 2.40 GHz. This package reproduces that platform
// as a set of cycle costs for the events the hardware would generate:
// enclave transitions (EENTER/EEXIT/AEX/ERESUME), EPC paging, enclave build
// (EADD+EEXTEND), trusted-file measurement, TLS record processing, and
// native syscalls. Costs are charged in virtual cycles (simclock.Cycles)
// and converted to time at the platform frequency, which makes every
// reproduced figure deterministic.
//
// Provenance of the constants is given next to each field; transition costs
// follow the 10k-18k cycles-per-round-trip range reported by the HotCalls
// and "SGX on virtualized systems" studies that the paper cites.
package costmodel

import (
	"time"

	"shield5g/internal/simclock"
)

// PageSize is the EPC page granularity in bytes.
const PageSize = 4096

// Mode selects how modelled costs are realised.
type Mode int

const (
	// Accounting charges costs to virtual time only (the default).
	Accounting Mode = iota + 1
	// Realtime additionally converts charged cycles into calibrated
	// busy-wait so wall-clock benchmarks exhibit the modelled ordering.
	Realtime
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case Accounting:
		return "accounting"
	case Realtime:
		return "realtime"
	default:
		return "unknown"
	}
}

// Model is the cycle-cost model for one simulated platform. Fields are set
// once at construction and read concurrently afterwards.
type Model struct {
	// FrequencyHz is the CPU clock rate used for cycle/time conversion.
	FrequencyHz uint64

	// EENTER is the cost of a synchronous enclave entry.
	// HotCalls (Weisse et al.) reports 10k-18k cycles per round trip.
	EENTER simclock.Cycles
	// EEXIT is the cost of a synchronous enclave exit.
	EEXIT simclock.Cycles
	// AEX is the cost of an asynchronous enclave exit (interrupt, fault).
	AEX simclock.Cycles
	// ERESUME is the cost of resuming the enclave after an AEX.
	ERESUME simclock.Cycles

	// EPCPageFault is the cost of one EPC paging event (moving a page
	// between EPC and main memory, sgx-perf reports ~40k cycles).
	EPCPageFault simclock.Cycles
	// EnclaveBuildPerPage is the EADD+EEXTEND cost of measuring one 4 KiB
	// page into the enclave at build time. Enclave build dominates the
	// near-minute load time in Fig. 7.
	EnclaveBuildPerPage simclock.Cycles
	// PreheatPerPage is the cost of pre-faulting one heap page when the
	// Gramine sgx.preheat_enclave option is enabled.
	PreheatPerPage simclock.Cycles
	// TrustedFileHashPerByte is the SHA-256 measurement cost of trusted
	// files appended to the manifest by GSC.
	TrustedFileHashPerByte simclock.Cycles

	// SyscallNative is the cost of a syscall outside any enclave.
	SyscallNative simclock.Cycles
	// ShieldPerByte is the cost of copying and shielding (encrypt or
	// integrity-check) one byte crossing the enclave boundary.
	ShieldPerByte simclock.Cycles
	// CopyPerByte is the plain memcpy cost per byte outside enclaves.
	CopyPerByte simclock.Cycles

	// TLSHandshakeClient and TLSHandshakeServer cost one side of a mutual
	// TLS 1.3 handshake (asymmetric crypto dominated).
	TLSHandshakeClient simclock.Cycles
	TLSHandshakeServer simclock.Cycles
	// TLSRecordBase and TLSRecordPerByte cost symmetric record protection.
	TLSRecordBase    simclock.Cycles
	TLSRecordPerByte simclock.Cycles

	// HTTPParseBase and HTTPPerByte cost HTTP/1.1 framing and JSON codec
	// work per message.
	HTTPParseBase simclock.Cycles
	HTTPPerByte   simclock.Cycles

	// LoopbackRTT is the kernel round-trip between co-located containers
	// on the Docker bridge: veth pair traversal, bridge forwarding,
	// conntrack and the TCP stack on both ends (~420 µs at 2.4 GHz,
	// matching the paper's ~400-600 µs container-mode response times).
	LoopbackRTT simclock.Cycles

	// AEXRatePerThreadHz is the rate of asynchronous exits per
	// enclave-resident thread (timer interrupts at the kernel tick rate).
	AEXRatePerThreadHz float64

	// TimerTickHz is the host kernel tick rate.
	TimerTickHz float64

	// SwitchlessPollCycles is the cost of one empty dispatcher poll of the
	// switchless submission ring: a cache-line load of the next slot's
	// sequence word plus the loop overhead. HotCalls (Weisse et al.)
	// measures the responder's spin iteration at well under a microsecond;
	// ~200 cycles models one cross-core cache-line probe.
	SwitchlessPollCycles simclock.Cycles
	// SwitchlessEnqueueCycles is the producer-side cost of one switchless
	// submission: the tail CAS, the argument store, and the slot publish
	// (HotCalls reports the whole shared-memory call at ~600 cycles vs
	// ~17k for an ECALL round trip).
	SwitchlessEnqueueCycles simclock.Cycles
	// SwitchlessDoorbellCycles is the untrusted-side overhead of waking a
	// parked dispatcher — futex syscall and scheduler handoff — charged on
	// top of the ECALL round trip the wake itself pays.
	SwitchlessDoorbellCycles simclock.Cycles
	// SwitchlessSpinPolls is the dispatcher's spin budget: after this many
	// consecutive empty polls it parks and waits for a doorbell. The
	// budget is virtual-deterministic — SpinPolls x PollCycles on the
	// arrival axis — never a wall timer.
	SwitchlessSpinPolls int
}

// Default returns the cost model of the paper's testbed.
func Default() *Model {
	return &Model{
		FrequencyHz: simclock.DefaultFrequencyHz,

		EENTER:  8_800,
		EEXIT:   8_400,
		AEX:     12_000,
		ERESUME: 8_000,

		EPCPageFault:           40_000,
		EnclaveBuildPerPage:    680_000,
		PreheatPerPage:         40_000,
		TrustedFileHashPerByte: 16,

		SyscallNative: 1_400,
		ShieldPerByte: 6,
		CopyPerByte:   1,

		TLSHandshakeClient: 720_000,
		TLSHandshakeServer: 960_000,
		TLSRecordBase:      2_400,
		TLSRecordPerByte:   3,

		HTTPParseBase: 12_000,
		HTTPPerByte:   40,

		LoopbackRTT: 1_000_000,

		AEXRatePerThreadHz: 250,
		TimerTickHz:        250,

		SwitchlessPollCycles:     200,
		SwitchlessEnqueueCycles:  600,
		SwitchlessDoorbellCycles: 1_500,
		SwitchlessSpinPolls:      4_096,
	}
}

// Duration converts cycles to time at the model's frequency.
func (m *Model) Duration(n simclock.Cycles) time.Duration {
	return simclock.Duration(n, m.FrequencyHz)
}

// Cycles converts a duration to cycles at the model's frequency.
func (m *Model) Cycles(d time.Duration) simclock.Cycles {
	return simclock.FromDuration(d, m.FrequencyHz)
}

// OCALLRoundTrip is the transition cost of one OCALL: the thread leaves the
// enclave (EEXIT), the untrusted runtime serves the call, and the thread
// re-enters (EENTER).
func (m *Model) OCALLRoundTrip() simclock.Cycles { return m.EEXIT + m.EENTER }

// ECALLRoundTrip is the transition cost of one ECALL: entry plus the exit
// when the call returns.
func (m *Model) ECALLRoundTrip() simclock.Cycles { return m.EENTER + m.EEXIT }

// AEXRoundTrip is the cost of one asynchronous exit plus its ERESUME.
func (m *Model) AEXRoundTrip() simclock.Cycles { return m.AEX + m.ERESUME }

// ShieldCost is the boundary cost of moving n bytes into or out of the
// enclave, including copy and cryptographic shielding.
func (m *Model) ShieldCost(n int) simclock.Cycles {
	if n < 0 {
		n = 0
	}
	return simclock.Cycles(n) * m.ShieldPerByte
}

// TLSRecordCost is the symmetric protection cost of an n-byte TLS record.
func (m *Model) TLSRecordCost(n int) simclock.Cycles {
	if n < 0 {
		n = 0
	}
	return m.TLSRecordBase + simclock.Cycles(n)*m.TLSRecordPerByte
}

// HTTPCost is the framing and codec cost of an n-byte HTTP message.
func (m *Model) HTTPCost(n int) simclock.Cycles {
	if n < 0 {
		n = 0
	}
	return m.HTTPParseBase + simclock.Cycles(n)*m.HTTPPerByte
}

// SwitchlessSpinBudget is the virtual time a dispatcher spins on an empty
// ring before parking: SpinPolls consecutive empty polls.
func (m *Model) SwitchlessSpinBudget() simclock.Cycles {
	return simclock.Cycles(m.SwitchlessSpinPolls) * m.SwitchlessPollCycles
}

// PagesFor reports the number of whole EPC pages covering n bytes.
func PagesFor(n uint64) uint64 {
	return (n + PageSize - 1) / PageSize
}
