package kdf

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"math/rand"
	"sync"
	"testing"
)

// refGeneric mirrors the seed implementation: fresh scratch slice and
// crypto/hmac state per call. The pooled Generic must stay byte-identical.
func refGeneric(key []byte, fc byte, params ...[]byte) []byte {
	n := 0
	for _, p := range params {
		n += len(p)
	}
	s := make([]byte, 0, 1+len(params)*3+n)
	s = append(s, fc)
	for _, p := range params {
		s = append(s, p...)
		s = binary.BigEndian.AppendUint16(s, uint16(len(p)))
	}
	mac := hmac.New(sha256.New, key)
	mac.Write(s)
	return mac.Sum(nil)
}

func TestPooledGenericMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		key := make([]byte, 16+rng.Intn(64))
		rng.Read(key)
		fc := byte(rng.Intn(256))
		params := make([][]byte, rng.Intn(4))
		for j := range params {
			params[j] = make([]byte, rng.Intn(40))
			rng.Read(params[j])
		}
		got := Generic(key, fc, params...)
		want := refGeneric(key, fc, params...)
		if !bytes.Equal(got, want) {
			t.Fatalf("case %d: pooled Generic diverges\n got %x\nwant %x", i, got, want)
		}
	}
}

func TestAppendGenericExtendsDst(t *testing.T) {
	key := []byte("0123456789abcdef")
	dst := []byte{0xAA, 0xBB}
	out := AppendGeneric(dst, key, 0x6A, []byte("p0"))
	if len(out) != 2+sha256.Size {
		t.Fatalf("len = %d", len(out))
	}
	if out[0] != 0xAA || out[1] != 0xBB {
		t.Fatal("dst prefix clobbered")
	}
	if want := refGeneric(key, 0x6A, []byte("p0")); !bytes.Equal(out[2:], want) {
		t.Fatal("appended output diverges from reference")
	}
}

// TestPooledGenericConcurrent exercises pool reuse across goroutines; run
// with -race this also proves the pooled states are not shared.
func TestPooledGenericConcurrent(t *testing.T) {
	key := bytes.Repeat([]byte{0x11}, 32)
	want := refGeneric(key, fcKSEAF, []byte("5G:mnc001.mcc001.3gppnetwork.org"))
	var wg sync.WaitGroup
	fail := make(chan struct{}, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if !bytes.Equal(Generic(key, fcKSEAF, []byte("5G:mnc001.mcc001.3gppnetwork.org")), want) {
					fail <- struct{}{}
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case <-fail:
		t.Fatal("concurrent pooled Generic produced a wrong derivation")
	default:
	}
}
