package paka

import (
	"context"
	"testing"

	"shield5g/internal/costmodel"
	"shield5g/internal/hmee/sgx"
	"shield5g/internal/sbi"
	"shield5g/internal/simclock"
)

// deployVariant builds an eUDM module with optimization flags.
func deployVariant(t *testing.T, seed uint64, exitless, userTCP bool) (*Module, *sbi.Client, *costmodel.Env) {
	t.Helper()
	env := costmodel.NewEnv(nil, seed, nil)
	p, err := sgx.NewPlatform(sgx.PlatformConfig{Seed: seed})
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	reg := sbi.NewRegistry()
	m, err := New(context.Background(), Config{
		Kind: EUDM, Isolation: SGX, Env: env, Platform: p, Registry: reg,
		Exitless: exitless, UserLevelTCP: userTCP,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(m.Stop)
	if err := m.ProvisionSubscriber(context.Background(), testSUPI, testK); err != nil {
		t.Fatalf("provision: %v", err)
	}
	return m, sbi.NewClient("vnf", env, reg), env
}

func invokeEUDM(t *testing.T, client *sbi.Client) simclock.Cycles {
	t.Helper()
	var acct simclock.Account
	ctx := simclock.WithAccount(context.Background(), &acct)
	var resp UDMGenerateAVResponse
	if err := client.Post(ctx, EUDM.ServiceName(), PathUDMGenerateAV, avRequest(), &resp); err != nil {
		t.Fatalf("Post: %v", err)
	}
	if len(resp.KAUSF) != 32 {
		t.Fatal("bad AV")
	}
	return acct.Total()
}

func TestExitlessModuleEliminatesTransitions(t *testing.T) {
	base, baseClient, _ := deployVariant(t, 50, false, false)
	exitless, exClient, _ := deployVariant(t, 51, true, false)

	invokeEUDM(t, baseClient)
	invokeEUDM(t, exClient)

	baseBefore, exBefore := base.Stats(), exitless.Stats()
	baseCost := invokeEUDM(t, baseClient)
	exCost := invokeEUDM(t, exClient)
	baseDelta := base.Stats().Sub(baseBefore)
	exDelta := exitless.Stats().Sub(exBefore)

	if baseDelta.EENTER < 80 {
		t.Fatalf("baseline EENTER/req = %d", baseDelta.EENTER)
	}
	if exDelta.EENTER != 0 || exDelta.EEXIT != 0 {
		t.Fatalf("exitless transitions = %d/%d, want 0/0", exDelta.EENTER, exDelta.EEXIT)
	}
	if exDelta.OCALLs == 0 {
		t.Fatal("exitless OCALLs not counted")
	}
	if exCost >= baseCost {
		t.Fatalf("exitless (%d cycles) not cheaper than baseline (%d)", exCost, baseCost)
	}
}

func TestUserTCPModuleCutsSyscallsGrowsTCB(t *testing.T) {
	base, baseClient, _ := deployVariant(t, 52, false, false)
	tcp, tcpClient, _ := deployVariant(t, 53, false, true)

	invokeEUDM(t, baseClient)
	invokeEUDM(t, tcpClient)

	baseBefore, tcpBefore := base.Stats(), tcp.Stats()
	invokeEUDM(t, baseClient)
	invokeEUDM(t, tcpClient)
	baseDelta := base.Stats().Sub(baseBefore)
	tcpDelta := tcp.Stats().Sub(tcpBefore)

	if tcpDelta.EENTER >= baseDelta.EENTER/2 {
		t.Fatalf("user TCP EENTER/req = %d, baseline %d", tcpDelta.EENTER, baseDelta.EENTER)
	}
	if tcp.TCBBytes() <= base.TCBBytes() {
		t.Fatalf("user TCP TCB %d not above baseline %d", tcp.TCBBytes(), base.TCBBytes())
	}
	// The extra libraries change the enclave identity.
	if tcp.Enclave().Measurement() == base.Enclave().Measurement() {
		t.Fatal("user TCP variant has identical measurement")
	}
}

func TestExitlessBumpsThreadBudget(t *testing.T) {
	m, _, _ := deployVariant(t, 54, true, false)
	// The manifest minimum for exitless is HelperThreads+2 = 5.
	if got := m.Enclave().Config().MaxThreads; got < 5 {
		t.Fatalf("MaxThreads = %d, want >= 5", got)
	}
}

func TestContainerTCBIncludesHost(t *testing.T) {
	env := costmodel.NewEnv(nil, 55, nil)
	reg := sbi.NewRegistry()
	m, err := New(context.Background(), Config{Kind: EUDM, Isolation: Container, Env: env, Registry: reg})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer m.Stop()
	if m.TCBBytes() <= HostTCBBytes {
		t.Fatalf("container TCB = %d, want > host stack %d", m.TCBBytes(), uint64(HostTCBBytes))
	}
}
