package costmodel

import (
	"testing"
	"testing/quick"
	"time"

	"shield5g/internal/simclock"
)

func TestDefaultTransitionCostsInCitedRange(t *testing.T) {
	m := Default()
	// The paper cites 10k-18k cycles per enclave context switch.
	rt := m.OCALLRoundTrip()
	if rt < 10_000 || rt > 18_000 {
		t.Fatalf("OCALL round trip = %d cycles, want within cited 10k-18k", rt)
	}
	if got := m.ECALLRoundTrip(); got != m.EENTER+m.EEXIT {
		t.Fatalf("ECALLRoundTrip = %d", got)
	}
	if got := m.AEXRoundTrip(); got != m.AEX+m.ERESUME {
		t.Fatalf("AEXRoundTrip = %d", got)
	}
}

func TestModeString(t *testing.T) {
	if Accounting.String() != "accounting" || Realtime.String() != "realtime" {
		t.Fatal("mode names wrong")
	}
	if Mode(99).String() != "unknown" {
		t.Fatal("unknown mode name wrong")
	}
}

func TestShieldCost(t *testing.T) {
	m := Default()
	if got := m.ShieldCost(100); got != 100*m.ShieldPerByte {
		t.Fatalf("ShieldCost(100) = %d", got)
	}
	if got := m.ShieldCost(-5); got != 0 {
		t.Fatalf("ShieldCost(-5) = %d, want 0", got)
	}
}

func TestTLSRecordCostMonotonic(t *testing.T) {
	m := Default()
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return m.TLSRecordCost(x) <= m.TLSRecordCost(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHTTPCostNegativeClamped(t *testing.T) {
	m := Default()
	if got := m.HTTPCost(-1); got != m.HTTPParseBase {
		t.Fatalf("HTTPCost(-1) = %d, want base %d", got, m.HTTPParseBase)
	}
}

func TestPagesFor(t *testing.T) {
	tests := []struct {
		bytes uint64
		want  uint64
	}{
		{0, 0}, {1, 1}, {4096, 1}, {4097, 2}, {512 << 20, 131072},
	}
	for _, tt := range tests {
		if got := PagesFor(tt.bytes); got != tt.want {
			t.Errorf("PagesFor(%d) = %d, want %d", tt.bytes, got, tt.want)
		}
	}
}

func TestDurationAtModelFrequency(t *testing.T) {
	m := Default()
	if got := m.Duration(m.Cycles(time.Millisecond)); got != time.Millisecond {
		t.Fatalf("round trip = %v", got)
	}
}

func TestRealizerNoopWhenDisabled(t *testing.T) {
	m := Default()
	var r *Realizer
	r.Realize(1_000_000) // nil receiver must be safe
	r = NewRealizer(m, 0)
	start := time.Now()
	r.Realize(simclock.Cycles(m.FrequencyHz)) // modelled 1s, disabled
	if time.Since(start) > 50*time.Millisecond {
		t.Fatal("disabled realizer waited")
	}
}

func TestRealizerScaledWait(t *testing.T) {
	m := Default()
	r := NewRealizer(m, 0.001)
	if r.Scale() != 0.001 {
		t.Fatalf("Scale = %v", r.Scale())
	}
	start := time.Now()
	// Modelled 100ms, scaled to 100µs.
	r.Realize(m.Cycles(100 * time.Millisecond))
	got := time.Since(start)
	if got < 50*time.Microsecond {
		t.Fatalf("realized wait too short: %v", got)
	}
	if got > 50*time.Millisecond {
		t.Fatalf("realized wait too long: %v", got)
	}
}

func TestEnclaveBuildTimeNearOneMinute(t *testing.T) {
	// Sanity-check the Fig. 7 calibration: building and preheating a
	// 512 MiB enclave plus hashing a GSC image must land near a minute.
	m := Default()
	pages := simclock.Cycles(PagesFor(512 << 20))
	build := pages * m.EnclaveBuildPerPage
	preheat := pages * m.PreheatPerPage
	hash := simclock.Cycles(2_600_000_000) * m.TrustedFileHashPerByte
	total := m.Duration(build + preheat + hash)
	if total < 45*time.Second || total > 70*time.Second {
		t.Fatalf("modelled enclave load = %v, want ~1 minute", total)
	}
}
