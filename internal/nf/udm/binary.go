package udm

// Binary SBI codecs for the UDM messages (see internal/sbi/codec).
// The optional SUCI pointer is encoded behind a presence byte so the
// JSON null / omitted distinction survives the binary round trip.

import (
	"shield5g/internal/crypto/suci"
	"shield5g/internal/sbi/codec"
)

// AppendBinary implements codec.Marshaler.
//
//shieldlint:hotpath
func (m *GenerateAuthDataRequest) AppendBinary(dst []byte) []byte {
	if m.SUCI == nil {
		dst = codec.AppendByte(dst, 0)
	} else {
		dst = codec.AppendByte(dst, 1)
		dst = m.SUCI.AppendBinary(dst)
	}
	dst = codec.AppendString(dst, m.SUPI)
	return codec.AppendString(dst, m.ServingNetworkName)
}

// DecodeBinary implements codec.Unmarshaler. The SUCI decodes into its
// own struct (SchemeOutput compacted by its codec); strings are copies.
//
//shieldlint:hotpath
func (m *GenerateAuthDataRequest) DecodeBinary(r *codec.Reader) error {
	if r.Byte() != 0 {
		m.SUCI = new(suci.SUCI)
		if err := m.SUCI.DecodeBinary(r); err != nil {
			return err
		}
	} else {
		m.SUCI = nil
	}
	m.SUPI = r.String()
	m.ServingNetworkName = r.InternString()
	return r.Err()
}

// AppendBinary implements codec.Marshaler.
//
//shieldlint:hotpath
func (m *GenerateAuthDataResponse) AppendBinary(dst []byte) []byte {
	dst = codec.AppendString(dst, m.SUPI)
	dst = codec.AppendBytes(dst, m.RAND)
	dst = codec.AppendBytes(dst, m.AUTN)
	dst = codec.AppendBytes(dst, m.XRESStar)
	return codec.AppendBytes(dst, m.KAUSF)
}

// DecodeBinary implements codec.Unmarshaler: the AUSF retains the HE AV
// in its session, so the fields compact into one owned backing.
//
//shieldlint:hotpath
func (m *GenerateAuthDataResponse) DecodeBinary(r *codec.Reader) error {
	m.SUPI = r.String()
	m.RAND = r.Bytes()
	m.AUTN = r.Bytes()
	m.XRESStar = r.Bytes()
	m.KAUSF = r.Bytes()
	if err := r.Err(); err != nil {
		return err
	}
	codec.Compact(&m.RAND, &m.AUTN, &m.XRESStar, &m.KAUSF)
	return nil
}

// AppendBinary implements codec.Marshaler.
//
//shieldlint:hotpath
func (m *ResyncRequest) AppendBinary(dst []byte) []byte {
	dst = codec.AppendString(dst, m.SUPI)
	dst = codec.AppendBytes(dst, m.RAND)
	return codec.AppendBytes(dst, m.AUTS)
}

// DecodeBinary implements codec.Unmarshaler (zero-copy request views;
// handleResync forwards them within the call).
//
//shieldlint:hotpath
func (m *ResyncRequest) DecodeBinary(r *codec.Reader) error {
	m.SUPI = r.String()
	m.RAND = r.Bytes()
	m.AUTS = r.Bytes()
	return r.Err()
}

// AppendBinary implements codec.Marshaler.
//
//shieldlint:hotpath
func (m *Empty) AppendBinary(dst []byte) []byte { return dst }

// DecodeBinary implements codec.Unmarshaler.
//
//shieldlint:hotpath
func (m *Empty) DecodeBinary(*codec.Reader) error { return nil }
