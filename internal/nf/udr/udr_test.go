package udr

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"testing/quick"

	"shield5g/internal/costmodel"
	"shield5g/internal/sbi"
)

func harness(t *testing.T) (*UDR, *Client) {
	t.Helper()
	env := costmodel.NewEnv(nil, 1, nil)
	reg := sbi.NewRegistry()
	u, err := New(env, reg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return u, NewClient(sbi.NewClient("test", env, reg))
}

func validSubscriber(supi string) Subscriber {
	return Subscriber{
		SUPI:     supi,
		K:        bytes.Repeat([]byte{0x11}, 16),
		OPc:      bytes.Repeat([]byte{0x22}, 16),
		SQN:      []byte{0, 0, 0, 0, 0, 0},
		AMFField: []byte{0x80, 0x00},
	}
}

func TestProvisionAndGet(t *testing.T) {
	u, c := harness(t)
	ctx := context.Background()
	if err := c.Provision(ctx, validSubscriber("imsi-1")); err != nil {
		t.Fatalf("Provision: %v", err)
	}
	if u.SubscriberCount() != 1 {
		t.Fatalf("SubscriberCount = %d", u.SubscriberCount())
	}
	got, err := c.Get(ctx, "imsi-1")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if got.SUPI != "imsi-1" || !bytes.Equal(got.K, bytes.Repeat([]byte{0x11}, 16)) {
		t.Fatalf("Get = %+v", got)
	}
}

func TestProvisionValidation(t *testing.T) {
	_, c := harness(t)
	ctx := context.Background()
	cases := map[string]func(*Subscriber){
		"empty SUPI": func(s *Subscriber) { s.SUPI = "" },
		"short K":    func(s *Subscriber) { s.K = s.K[:8] },
		"short OPc":  func(s *Subscriber) { s.OPc = nil },
		"short SQN":  func(s *Subscriber) { s.SQN = s.SQN[:3] },
		"long AMF":   func(s *Subscriber) { s.AMFField = []byte{1, 2, 3} },
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			s := validSubscriber("imsi-x")
			mutate(&s)
			err := c.Provision(ctx, s)
			var pd *sbi.ProblemDetails
			if !errors.As(err, &pd) || pd.Status != 400 {
				t.Fatalf("err = %v, want 400", err)
			}
		})
	}
}

func TestNextAuthAdvancesSQN(t *testing.T) {
	_, c := harness(t)
	ctx := context.Background()
	if err := c.Provision(ctx, validSubscriber("imsi-1")); err != nil {
		t.Fatalf("Provision: %v", err)
	}
	a, err := c.NextAuth(ctx, "imsi-1")
	if err != nil {
		t.Fatalf("NextAuth: %v", err)
	}
	b, err := c.NextAuth(ctx, "imsi-1")
	if err != nil {
		t.Fatalf("NextAuth: %v", err)
	}
	if bytes.Equal(a.SQN, b.SQN) {
		t.Fatal("consecutive vectors share an SQN")
	}
	if sqnValue(b.SQN) != sqnValue(a.SQN)+sqnStep {
		t.Fatalf("SQN step = %d, want %d", sqnValue(b.SQN)-sqnValue(a.SQN), sqnStep)
	}
	if len(a.OPc) != 16 || len(a.AMFField) != 2 {
		t.Fatal("auth material sizes wrong")
	}
}

func TestNextAuthUnknownSubscriber(t *testing.T) {
	_, c := harness(t)
	_, err := c.NextAuth(context.Background(), "imsi-ghost")
	var pd *sbi.ProblemDetails
	if !errors.As(err, &pd) || pd.Status != 404 {
		t.Fatalf("err = %v, want 404", err)
	}
}

func TestResyncRebasesAboveUESQN(t *testing.T) {
	_, c := harness(t)
	ctx := context.Background()
	if err := c.Provision(ctx, validSubscriber("imsi-1")); err != nil {
		t.Fatalf("Provision: %v", err)
	}
	ueSQN := []byte{0, 0, 0, 1, 0, 0}
	if err := c.Resync(ctx, "imsi-1", ueSQN); err != nil {
		t.Fatalf("Resync: %v", err)
	}
	next, err := c.NextAuth(ctx, "imsi-1")
	if err != nil {
		t.Fatalf("NextAuth: %v", err)
	}
	if sqnValue(next.SQN) <= sqnValue(ueSQN) {
		t.Fatalf("post-resync SQN %d not above UE SQN %d", sqnValue(next.SQN), sqnValue(ueSQN))
	}
	if err := c.Resync(ctx, "imsi-1", []byte{1, 2}); err == nil {
		t.Fatal("short SQN_MS accepted")
	}
	if err := c.Resync(ctx, "imsi-ghost", ueSQN); err == nil {
		t.Fatal("unknown subscriber resync accepted")
	}
}

func TestGetReturnsCopies(t *testing.T) {
	_, c := harness(t)
	ctx := context.Background()
	if err := c.Provision(ctx, validSubscriber("imsi-1")); err != nil {
		t.Fatalf("Provision: %v", err)
	}
	a, err := c.Get(ctx, "imsi-1")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	a.K[0] = 0xFF
	b, err := c.Get(ctx, "imsi-1")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if b.K[0] == 0xFF {
		t.Fatal("Get returned aliased storage")
	}
	if _, err := c.Get(ctx, "nobody"); err == nil {
		t.Fatal("unknown Get accepted")
	}
}

func TestAdvanceSQNWraps(t *testing.T) {
	sqn := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}
	advanceSQN(sqn, 1)
	if sqnValue(sqn) != 0 {
		t.Fatalf("wrap = %d, want 0", sqnValue(sqn))
	}
}

// Property: advanceSQN is addition modulo 2^48.
func TestAdvanceSQNProperty(t *testing.T) {
	f := func(start uint64, step uint16) bool {
		start &= 0xFFFFFFFFFFFF
		sqn := make([]byte, 6)
		for i := 0; i < 6; i++ {
			sqn[5-i] = byte(start >> (8 * i))
		}
		advanceSQN(sqn, uint64(step))
		return sqnValue(sqn) == (start+uint64(step))&0xFFFFFFFFFFFF
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func sqnValue(sqn []byte) uint64 {
	var v uint64
	for _, b := range sqn {
		v = v<<8 | uint64(b)
	}
	return v
}
