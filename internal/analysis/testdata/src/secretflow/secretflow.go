// Package secretflow is a shieldlint fixture for the secret-taint
// analyzer: key material must not reach formatting, logging, JSON or
// SBI sinks outside the enclave-side packages.
package secretflow

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
)

type Subscriber struct {
	SUPI string
	K    []byte
	OPc  []byte
}

type Token struct {
	// shieldlint:secret derived session token joins the secret set
	Value []byte
}

type Report struct {
	SUPI  string
	Count int
}

func logs(s Subscriber, t Token) {
	fmt.Printf("subscriber %s key %x\n", s.SUPI, s.K) // want "secret field K flows into fmt.Printf"
	log.Println(s.OPc)                                // want "secret field OPc flows into log.Println"
	fmt.Println(t.Value)                              // want "secret field Value flows into fmt.Println"
	fmt.Println(len(s.K))                             // length of fixed-size key material is public: clean
	fmt.Println(s.SUPI)                               // clean
}

func marshal(s Subscriber, r Report) ([]byte, error) {
	if _, err := json.Marshal(r); err != nil { // clean: Report carries no secrets
		return nil, err
	}
	return json.Marshal(s) // want "secret-bearing type .*Subscriber flows into encoding/json.Marshal"
}

// logf is printf-shaped, so its variadic arguments end up formatted
// into logs; the analyzer treats it as a sink.
func logf(format string, args ...any) { _ = format; _ = args }

func wrapper(s Subscriber) {
	logf("key=%x", s.K) // want "secret field K flows into logf"
	logf("supi=%s", s.SUPI)
}

type invoker struct{}

func (invoker) Post(ctx context.Context, service, path string, req, resp any) error {
	return nil
}

type ProvisionRequest struct {
	Subscriber Subscriber
}

type CountRequest struct {
	SUPI string
}

func ship(ctx context.Context, inv invoker, s Subscriber) error {
	if err := inv.Post(ctx, "udr", "/count", &CountRequest{SUPI: s.SUPI}, nil); err != nil { // clean payload
		return err
	}
	return inv.Post(ctx, "udr", "/provision", &ProvisionRequest{Subscriber: s}, nil) // want "carries the long-term key K across a service interface"
}

func annotated(s Subscriber) {
	//shieldlint:ignore secretflow fixture exercises the escape hatch
	fmt.Println(s.K) // want:suppressed "secret field K flows into fmt.Println"
}
