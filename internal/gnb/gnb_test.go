package gnb_test

import (
	"bytes"
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"testing"

	"shield5g/internal/crypto/milenage"
	"shield5g/internal/crypto/suci"
	"shield5g/internal/deploy"
	"shield5g/internal/gnb"
	"shield5g/internal/paka"
	"shield5g/internal/simclock"
	"shield5g/internal/ue"
)

func newSlice(t *testing.T, radio gnb.RadioProfile) *deploy.Slice {
	t.Helper()
	s, err := deploy.NewSlice(context.Background(), deploy.SliceConfig{
		Isolation: paka.Container, Seed: 13, Radio: radio,
	})
	if err != nil {
		t.Fatalf("NewSlice: %v", err)
	}
	t.Cleanup(s.Stop)
	return s
}

func provision(t *testing.T, s *deploy.Slice, msin string) *ue.UE {
	t.Helper()
	supi := suci.SUPI{MCC: "001", MNC: "01", MSIN: msin}
	k := make([]byte, 16)
	if _, err := rand.Read(k); err != nil {
		t.Fatalf("rand: %v", err)
	}
	opc, err := milenage.ComputeOPc(k, make([]byte, 16))
	if err != nil {
		t.Fatalf("ComputeOPc: %v", err)
	}
	if err := s.ProvisionSubscriber(context.Background(), supi, k, opc); err != nil {
		t.Fatalf("ProvisionSubscriber: %v", err)
	}
	device, err := ue.New(ue.Config{
		SUPI: supi, K: k, OPc: opc,
		HomeNetworkPublicKey: s.HomeNetworkKey.PublicKey(),
		HomeNetworkKeyID:     s.HomeNetworkKey.ID,
		Env:                  s.Env,
	})
	if err != nil {
		t.Fatalf("ue.New: %v", err)
	}
	return device
}

func TestRadioProfiles(t *testing.T) {
	sim := gnb.GNBSIM()
	sdr := gnb.USRPX310()
	if sim.Name != "gnbsim" || sdr.Name != "usrp-x310" {
		t.Fatal("profile names wrong")
	}
	if sdr.RTTCycles <= sim.RTTCycles {
		t.Fatal("OTA radio not slower than gnbsim")
	}
}

func TestNewValidation(t *testing.T) {
	s := newSlice(t, gnb.GNBSIM())
	if _, err := gnb.New(gnb.Config{AMF: s.AMF, MCC: "001", MNC: "01"}); err == nil {
		t.Fatal("missing env accepted")
	}
	if _, err := gnb.New(gnb.Config{Env: s.Env, MCC: "001", MNC: "01"}); err == nil {
		t.Fatal("missing AMF accepted")
	}
	if _, err := gnb.New(gnb.Config{Env: s.Env, AMF: s.AMF}); err == nil {
		t.Fatal("missing PLMN accepted")
	}
}

func TestBroadcastPLMNAndDefaultRadio(t *testing.T) {
	s := newSlice(t, gnb.RadioProfile{})
	if got := s.GNB.BroadcastPLMN(); got != "00101" {
		t.Fatalf("BroadcastPLMN = %q", got)
	}
	if s.GNB.Radio().Name != "gnbsim" {
		t.Fatalf("default radio = %q", s.GNB.Radio().Name)
	}
}

func TestRegisterUESetupTimeScalesWithRadio(t *testing.T) {
	fast := newSlice(t, gnb.GNBSIM())
	slow := newSlice(t, gnb.USRPX310())

	fastSess, err := fast.GNB.RegisterUE(context.Background(), provision(t, fast, "0000000001"))
	if err != nil {
		t.Fatalf("fast RegisterUE: %v", err)
	}
	slowSess, err := slow.GNB.RegisterUE(context.Background(), provision(t, slow, "0000000001"))
	if err != nil {
		t.Fatalf("slow RegisterUE: %v", err)
	}
	if slowSess.SetupTime <= fastSess.SetupTime {
		t.Fatalf("OTA setup (%v) not above gnbsim setup (%v)", slowSess.SetupTime, fastSess.SetupTime)
	}
	if fastSess.RANUEID() == 0 {
		t.Fatal("no RAN UE ID")
	}
}

func TestRegisterUEUnprovisionedFails(t *testing.T) {
	s := newSlice(t, gnb.GNBSIM())
	supi := suci.SUPI{MCC: "001", MNC: "01", MSIN: "0000009999"}
	k := make([]byte, 16)
	device, err := ue.New(ue.Config{
		SUPI: supi, K: k, OPc: k,
		HomeNetworkPublicKey: s.HomeNetworkKey.PublicKey(),
		HomeNetworkKeyID:     s.HomeNetworkKey.ID,
		Env:                  s.Env,
	})
	if err != nil {
		t.Fatalf("ue.New: %v", err)
	}
	if _, err := s.GNB.RegisterUE(context.Background(), device); err == nil {
		t.Fatal("unprovisioned UE registered")
	}
}

func TestSendDataRequiresPDUSession(t *testing.T) {
	s := newSlice(t, gnb.GNBSIM())
	sess, err := s.GNB.RegisterUE(context.Background(), provision(t, s, "0000000001"))
	if err != nil {
		t.Fatalf("RegisterUE: %v", err)
	}
	if _, err := sess.SendData(context.Background(), []byte("x")); err == nil {
		t.Fatal("data sent without PDU session")
	}
	if err := sess.EstablishPDUSession(context.Background(), 1, "internet"); err != nil {
		t.Fatalf("EstablishPDUSession: %v", err)
	}
	if sess.TEID() == 0 {
		t.Fatal("no TEID after PDU session")
	}
	echo, err := sess.SendData(context.Background(), []byte("payload"))
	if err != nil {
		t.Fatalf("SendData: %v", err)
	}
	if !bytes.Contains(echo, []byte("payload")) {
		t.Fatalf("echo = %q", echo)
	}
}

func TestRegisterManyCountsFailures(t *testing.T) {
	s := newSlice(t, gnb.GNBSIM())
	result, err := s.GNB.RegisterMany(context.Background(), 4, func(i int) (*ue.UE, error) {
		if i == 2 {
			// An unprovisioned device fails registration.
			supi := suci.SUPI{MCC: "001", MNC: "01", MSIN: "0000008888"}
			k := make([]byte, 16)
			return ue.New(ue.Config{
				SUPI: supi, K: k, OPc: k,
				HomeNetworkPublicKey: s.HomeNetworkKey.PublicKey(),
				HomeNetworkKeyID:     s.HomeNetworkKey.ID,
				Env:                  s.Env,
			})
		}
		return provision(t, s, fmt.Sprintf("%010d", 100+i)), nil
	})
	if err != nil {
		t.Fatalf("RegisterMany: %v", err)
	}
	if result.Registered != 3 || result.Failed != 1 {
		t.Fatalf("result = %+v", result)
	}
	if result.SetupTimes.N() != 3 {
		t.Fatalf("setup samples = %d", result.SetupTimes.N())
	}
}

func TestRegisterManyProvisionError(t *testing.T) {
	s := newSlice(t, gnb.GNBSIM())
	sentinel := errors.New("provision broken")
	_, err := s.GNB.RegisterMany(context.Background(), 2, func(int) (*ue.UE, error) {
		return nil, sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
}

func TestRegisterChargesAccount(t *testing.T) {
	s := newSlice(t, gnb.GNBSIM())
	var acct simclock.Account
	ctx := simclock.WithAccount(context.Background(), &acct)
	sess, err := s.GNB.RegisterUE(ctx, provision(t, s, "0000000001"))
	if err != nil {
		t.Fatalf("RegisterUE: %v", err)
	}
	if acct.Total() == 0 {
		t.Fatal("registration charged nothing")
	}
	if sess.SetupTime != s.Env.Model.Duration(acct.Total()) {
		t.Fatal("SetupTime does not match charged cycles")
	}
}
