// Package intern provides a bounded process-wide string intern table
// for protocol constants. Values like PLMN digits (MCC/MNC), routing
// indicators and serving network names repeat on every registration;
// canonicalising them through one table makes decoding them
// allocation-free after first sight.
//
// The table caps both entry length and entry count, so even a caller
// that misuses it on high-cardinality input (SUPIs, auth-context IDs —
// do not do this) can only churn it up to the cap, after which lookups
// miss and the caller just pays the allocation it would have paid
// anyway.
package intern

import "sync"

const (
	// maxLen is the longest byte string the table will admit; anything
	// longer is returned as a fresh string.
	maxLen = 64
	// maxEntries bounds the table. A fleet's worth of protocol
	// constants is dozens; 1024 leaves generous headroom while keeping
	// the worst-case footprint at maxEntries*maxLen bytes.
	maxEntries = 1024
)

var table = struct {
	sync.RWMutex
	m map[string]string
}{m: make(map[string]string, 64)}

// Bytes returns b as a canonical string. The string(b) map key
// conversion does not allocate on lookup, so a hit costs zero
// allocations.
//
//shieldlint:hotpath
func Bytes(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if len(b) > maxLen {
		return string(b)
	}
	table.RLock()
	s, ok := table.m[string(b)]
	table.RUnlock()
	if ok {
		return s
	}
	s = string(b)
	table.Lock()
	if len(table.m) < maxEntries {
		table.m[s] = s
	}
	table.Unlock()
	return s
}
