package deploy

import (
	"bytes"
	"context"
	"crypto/rand"
	"fmt"
	"io"
	"testing"
	"time"

	"shield5g/internal/crypto/milenage"
	"shield5g/internal/crypto/suci"
	"shield5g/internal/paka"
	"shield5g/internal/simclock"
	"shield5g/internal/ue"
)

func newTestSlice(t *testing.T, iso paka.Isolation) *Slice {
	t.Helper()
	s, err := NewSlice(context.Background(), SliceConfig{Isolation: iso, Seed: 42})
	if err != nil {
		t.Fatalf("NewSlice(%s): %v", iso, err)
	}
	t.Cleanup(s.Stop)
	return s
}

// provisionUE creates a subscriber and matching UE device.
func provisionUE(t *testing.T, s *Slice, msin string) *ue.UE {
	t.Helper()
	supi := suci.SUPI{MCC: "001", MNC: "01", MSIN: msin}
	k := make([]byte, 16)
	op := make([]byte, 16)
	if _, err := io.ReadFull(rand.Reader, k); err != nil {
		t.Fatalf("key gen: %v", err)
	}
	opc, err := milenage.ComputeOPc(k, op)
	if err != nil {
		t.Fatalf("ComputeOPc: %v", err)
	}
	if err := s.ProvisionSubscriber(context.Background(), supi, k, opc); err != nil {
		t.Fatalf("ProvisionSubscriber: %v", err)
	}
	device, err := ue.New(ue.Config{
		SUPI:                 supi,
		K:                    k,
		OPc:                  opc,
		HomeNetworkPublicKey: s.HomeNetworkKey.PublicKey(),
		HomeNetworkKeyID:     s.HomeNetworkKey.ID,
		Env:                  s.Env,
	})
	if err != nil {
		t.Fatalf("ue.New: %v", err)
	}
	return device
}

func TestRegistrationAllIsolationModes(t *testing.T) {
	for _, iso := range []paka.Isolation{paka.Monolithic, paka.Container, paka.SGX, paka.SEV} {
		t.Run(iso.String(), func(t *testing.T) {
			s := newTestSlice(t, iso)
			device := provisionUE(t, s, "0000000001")

			var acct simclock.Account
			ctx := simclock.WithAccount(context.Background(), &acct)
			sess, err := s.GNB.RegisterUE(ctx, device)
			if err != nil {
				t.Fatalf("RegisterUE: %v", err)
			}
			if s.AMF.RegisteredUEs() != 1 {
				t.Fatalf("RegisteredUEs = %d", s.AMF.RegisteredUEs())
			}
			if _, ok := device.GUTI(); !ok {
				t.Fatal("UE has no GUTI after registration")
			}
			if sess.SetupTime <= 0 {
				t.Fatal("no setup time recorded")
			}

			// Data session end to end.
			if err := sess.EstablishPDUSession(ctx, 1, "internet"); err != nil {
				t.Fatalf("EstablishPDUSession: %v", err)
			}
			if device.UEAddress() == "" {
				t.Fatal("UE has no address after PDU session")
			}
			resp, err := sess.SendData(ctx, []byte("ping"))
			if err != nil {
				t.Fatalf("SendData: %v", err)
			}
			if !bytes.Contains(resp, []byte("ping")) {
				t.Fatalf("data path response = %q", resp)
			}
		})
	}
}

func TestRegistrationDerivesSameKeysBothSides(t *testing.T) {
	// If UE and network derived different K_AMF the SecurityModeComplete
	// would fail integrity — so a completed registration already proves
	// key agreement. This test asserts the registration completes with
	// ciphered NAS (no plaintext fallbacks).
	s := newTestSlice(t, paka.SGX)
	device := provisionUE(t, s, "0000000002")
	if _, err := s.GNB.RegisterUE(context.Background(), device); err != nil {
		t.Fatalf("RegisterUE: %v", err)
	}
	supi, ok := s.AMF.SUPIOf(1)
	if !ok {
		t.Fatal("AMF lost the UE")
	}
	if supi != device.SUPI().String() {
		t.Fatalf("AMF SUPI = %s, want %s", supi, device.SUPI().String())
	}
}

func TestResynchronisationFlow(t *testing.T) {
	s := newTestSlice(t, paka.SGX)
	device := provisionUE(t, s, "0000000003")

	// Push the USIM sequence number far ahead of the network's so the
	// first challenge is stale, forcing an AUTS resynchronisation.
	if err := device.SetSQN([]byte{0x00, 0x00, 0x00, 0x01, 0x00, 0x00}); err != nil {
		t.Fatalf("SetSQN: %v", err)
	}
	if _, err := s.GNB.RegisterUE(context.Background(), device); err != nil {
		t.Fatalf("RegisterUE with resync: %v", err)
	}
	if s.AMF.RegisteredUEs() != 1 {
		t.Fatal("registration after resync did not complete")
	}
}

func TestUnknownSubscriberRejected(t *testing.T) {
	s := newTestSlice(t, paka.Container)
	// A UE whose key was never provisioned.
	supi := suci.SUPI{MCC: "001", MNC: "01", MSIN: "9999999999"}
	k := make([]byte, 16)
	device, err := ue.New(ue.Config{
		SUPI: supi, K: k, OPc: k,
		HomeNetworkPublicKey: s.HomeNetworkKey.PublicKey(),
		HomeNetworkKeyID:     s.HomeNetworkKey.ID,
		Env:                  s.Env,
	})
	if err != nil {
		t.Fatalf("ue.New: %v", err)
	}
	if _, err := s.GNB.RegisterUE(context.Background(), device); err == nil {
		t.Fatal("unprovisioned subscriber registered")
	}
}

func TestWrongKeyFailsAuthentication(t *testing.T) {
	s := newTestSlice(t, paka.Container)
	device := provisionUE(t, s, "0000000004")

	// Second device with the same identity but a corrupted key: its
	// AUTN check fails (network MAC computed under the real key).
	bad := make([]byte, 16)
	impostor, err := ue.New(ue.Config{
		SUPI: device.SUPI(), K: bad, OPc: bad,
		HomeNetworkPublicKey: s.HomeNetworkKey.PublicKey(),
		HomeNetworkKeyID:     s.HomeNetworkKey.ID,
		Env:                  s.Env,
	})
	if err != nil {
		t.Fatalf("ue.New: %v", err)
	}
	if _, err := s.GNB.RegisterUE(context.Background(), impostor); err == nil {
		t.Fatal("impostor with wrong key registered")
	}
	if s.AMF.RegisteredUEs() != 0 {
		t.Fatal("impostor counted as registered")
	}
}

func TestCOTSProfilePLMNGate(t *testing.T) {
	s := newTestSlice(t, paka.SGX)
	supi := suci.SUPI{MCC: "001", MNC: "01", MSIN: "0000000005"}
	profile := ue.OnePlus8()
	device, err := ue.New(ue.Config{
		SUPI: supi, K: make([]byte, 16), OPc: make([]byte, 16),
		HomeNetworkPublicKey: s.HomeNetworkKey.PublicKey(),
		HomeNetworkKeyID:     s.HomeNetworkKey.ID,
		Env:                  s.Env,
		Profile:              &profile,
	})
	if err != nil {
		t.Fatalf("ue.New: %v", err)
	}
	// The slice broadcasts 00101, which the OnePlus 8 detects.
	if err := device.DetectNetwork(s.GNB.BroadcastPLMN()); err != nil {
		t.Fatalf("DetectNetwork(00101): %v", err)
	}
	// A custom PLMN is not detected (the paper's observation).
	if err := device.DetectNetwork("99942"); err == nil {
		t.Fatal("custom PLMN detected by COTS profile")
	}
	// A wrong OS build blocks the end-to-end connection.
	profile2 := ue.OnePlus8()
	profile2.OSVersion = "Oxygen 10.0.0"
	device2, err := ue.New(ue.Config{
		SUPI: supi, K: make([]byte, 16), OPc: make([]byte, 16),
		HomeNetworkPublicKey: s.HomeNetworkKey.PublicKey(),
		HomeNetworkKeyID:     s.HomeNetworkKey.ID,
		Env:                  s.Env,
		Profile:              &profile2,
	})
	if err != nil {
		t.Fatalf("ue.New: %v", err)
	}
	if err := device2.DetectNetwork(s.GNB.BroadcastPLMN()); err == nil {
		t.Fatal("wrong OS build connected")
	}
}

func TestMassRegistration(t *testing.T) {
	s := newTestSlice(t, paka.SGX)
	const n = 10
	for i := 0; i < n; i++ {
		provisionUE(t, s, fmt.Sprintf("%010d", 100+i))
	}
	i := 0
	result, err := s.GNB.RegisterMany(context.Background(), n, func(int) (*ue.UE, error) {
		i++
		return provisionUEDevice(t, s, fmt.Sprintf("%010d", 200+i))
	})
	if err != nil {
		t.Fatalf("RegisterMany: %v", err)
	}
	if result.Registered != n || result.Failed != 0 {
		t.Fatalf("registered %d, failed %d", result.Registered, result.Failed)
	}
	if result.SetupTimes.N() != n {
		t.Fatalf("setup samples = %d", result.SetupTimes.N())
	}
}

// provisionUEDevice provisions and returns the device in one call.
func provisionUEDevice(t *testing.T, s *Slice, msin string) (*ue.UE, error) {
	return provisionUE(t, s, msin), nil
}

func TestSessionSetupTimeNearPaper(t *testing.T) {
	// The paper measures ~62.38 ms end-to-end session setup with SGX and
	// attributes ~3.48 ms (5.58%) to SGX isolation. Check the modelled
	// setup lands in a compatible range and the SGX delta is a small
	// fraction.
	measure := func(iso paka.Isolation) time.Duration {
		s := newTestSlice(t, iso)
		// Warm the path: first registration pays TLS handshakes and
		// module warm-up everywhere.
		warm := provisionUE(t, s, "0000000010")
		if _, err := s.GNB.RegisterUE(context.Background(), warm); err != nil {
			t.Fatalf("warm RegisterUE(%s): %v", iso, err)
		}
		rec := &[]time.Duration{}
		for i := 0; i < 20; i++ {
			device := provisionUE(t, s, fmt.Sprintf("%010d", 20+i))
			sess, err := s.GNB.RegisterUE(context.Background(), device)
			if err != nil {
				t.Fatalf("RegisterUE(%s): %v", iso, err)
			}
			*rec = append(*rec, sess.SetupTime)
		}
		var sum time.Duration
		for _, d := range *rec {
			sum += d
		}
		return sum / time.Duration(len(*rec))
	}

	sgxTime := measure(paka.SGX)
	containerTime := measure(paka.Container)

	t.Logf("session setup: container=%v sgx=%v delta=%v (%.2f%%)",
		containerTime, sgxTime, sgxTime-containerTime,
		100*float64(sgxTime-containerTime)/float64(sgxTime))

	if sgxTime < 20*time.Millisecond || sgxTime > 120*time.Millisecond {
		t.Errorf("SGX session setup %v not in the paper's ~62 ms regime", sgxTime)
	}
	delta := sgxTime - containerTime
	if delta <= 0 {
		t.Fatal("SGX setup not slower than container")
	}
	frac := float64(delta) / float64(sgxTime)
	if frac < 0.01 || frac > 0.15 {
		t.Errorf("SGX share of setup = %.2f%%, want a small fraction (~5.58%%)", frac*100)
	}
}

func TestGUTIReRegistration(t *testing.T) {
	s := newTestSlice(t, paka.SGX)
	device := provisionUE(t, s, "0000000042")

	// Initial registration over SUCI.
	if _, err := s.GNB.RegisterUE(context.Background(), device); err != nil {
		t.Fatalf("RegisterUE: %v", err)
	}
	firstGUTI, ok := device.GUTI()
	if !ok {
		t.Fatal("no GUTI after initial registration")
	}

	// Mobility registration over the stored GUTI: the SUCI never
	// crosses the air interface again, and a fresh GUTI is issued.
	sess, err := s.GNB.ReRegisterUE(context.Background(), device)
	if err != nil {
		t.Fatalf("ReRegisterUE: %v", err)
	}
	secondGUTI, ok := device.GUTI()
	if !ok {
		t.Fatal("no GUTI after re-registration")
	}
	if firstGUTI == secondGUTI {
		t.Fatal("GUTI not refreshed on re-registration")
	}
	if sess.SetupTime <= 0 {
		t.Fatal("no setup time")
	}
	// The re-registered session carries data.
	if err := sess.EstablishPDUSession(context.Background(), 2, "internet"); err != nil {
		t.Fatalf("EstablishPDUSession: %v", err)
	}
	if _, err := sess.SendData(context.Background(), []byte("moved")); err != nil {
		t.Fatalf("SendData: %v", err)
	}
}

func TestReRegistrationRequiresPriorGUTI(t *testing.T) {
	s := newTestSlice(t, paka.Container)
	device := provisionUE(t, s, "0000000043")
	if _, err := s.GNB.ReRegisterUE(context.Background(), device); err == nil {
		t.Fatal("re-registration without GUTI accepted")
	}
}

func TestForeignGUTIFailsClosedWithoutSubscriber(t *testing.T) {
	// A GUTI from a different slice triggers the TS 24.501 identity
	// procedure; with no subscriber record in the new network the
	// registration still fails closed.
	s1 := newTestSlice(t, paka.Container)
	device := provisionUE(t, s1, "0000000044")
	if _, err := s1.GNB.RegisterUE(context.Background(), device); err != nil {
		t.Fatalf("RegisterUE: %v", err)
	}

	s2, err := NewSlice(context.Background(), SliceConfig{Isolation: paka.Container, Seed: 77})
	if err != nil {
		t.Fatalf("NewSlice: %v", err)
	}
	defer s2.Stop()
	if _, err := s2.GNB.ReRegisterUE(context.Background(), device); err == nil {
		t.Fatal("unprovisioned foreign UE registered")
	}
}

func TestIdentityProcedureRecoversUnknownGUTI(t *testing.T) {
	// Same slice, but the AMF lost the GUTI binding (deregistration):
	// a mobility registration with the stale GUTI falls back to
	// IdentityRequest -> fresh SUCI and completes.
	s := newTestSlice(t, paka.SGX)
	device := provisionUE(t, s, "0000000045")
	sess, err := s.GNB.RegisterUE(context.Background(), device)
	if err != nil {
		t.Fatalf("RegisterUE: %v", err)
	}
	if err := sess.Deregister(context.Background()); err != nil {
		t.Fatalf("Deregister: %v", err)
	}
	if _, err := s.GNB.ReRegisterUE(context.Background(), device); err != nil {
		t.Fatalf("identity-procedure recovery failed: %v", err)
	}
	if s.AMF.RegisteredUEs() != 1 {
		t.Fatal("UE not registered after identity procedure")
	}
}

func TestConcurrentRegistrations(t *testing.T) {
	s := newTestSlice(t, paka.SGX)
	const n = 8
	devices := make([]*ue.UE, n)
	for i := range devices {
		devices[i] = provisionUE(t, s, fmt.Sprintf("%010d", 500+i))
	}
	errs := make(chan error, n)
	for _, device := range devices {
		go func() {
			_, err := s.GNB.RegisterUE(context.Background(), device)
			errs <- err
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Errorf("concurrent RegisterUE: %v", err)
		}
	}
	if got := s.AMF.RegisteredUEs(); got != n {
		t.Fatalf("RegisteredUEs = %d, want %d", got, n)
	}
}

func TestModuleOutageFailsClosedAndGNBSurvives(t *testing.T) {
	s := newTestSlice(t, paka.SGX)
	device := provisionUE(t, s, "0000000060")
	if _, err := s.GNB.RegisterUE(context.Background(), device); err != nil {
		t.Fatalf("RegisterUE: %v", err)
	}

	// Kill the eUDM P-AKA module: authentication must fail closed (no
	// fallback to unprotected crypto), and the control plane must stay
	// alive for diagnosis rather than crash.
	s.Modules[paka.EUDM].Stop()
	victim := provisionUEDeviceOnly(t, s, "0000000061")
	if _, err := s.GNB.RegisterUE(context.Background(), victim); err == nil {
		t.Fatal("registration succeeded without the eUDM module")
	}
	if got := s.AMF.RegisteredUEs(); got != 1 {
		t.Fatalf("RegisteredUEs = %d, want 1 (only the pre-outage UE)", got)
	}
}

// provisionUEDeviceOnly provisions the UDR/monolith side but tolerates the
// eUDM module being down (provisioning into a dead module is the outage
// under test).
func provisionUEDeviceOnly(t *testing.T, s *Slice, msin string) *ue.UE {
	t.Helper()
	supi := suci.SUPI{MCC: "001", MNC: "01", MSIN: msin}
	k := make([]byte, 16)
	if _, err := io.ReadFull(rand.Reader, k); err != nil {
		t.Fatalf("key gen: %v", err)
	}
	opc, err := milenage.ComputeOPc(k, make([]byte, 16))
	if err != nil {
		t.Fatalf("ComputeOPc: %v", err)
	}
	_ = s.ProvisionSubscriber(context.Background(), supi, k, opc) // may fail: module down
	device, err := ue.New(ue.Config{
		SUPI: supi, K: k, OPc: opc,
		HomeNetworkPublicKey: s.HomeNetworkKey.PublicKey(),
		HomeNetworkKeyID:     s.HomeNetworkKey.ID,
		Env:                  s.Env,
	})
	if err != nil {
		t.Fatalf("ue.New: %v", err)
	}
	return device
}

func TestSliceStopReleasesAllEPC(t *testing.T) {
	s, err := NewSlice(context.Background(), SliceConfig{Isolation: paka.SGX, Seed: 99})
	if err != nil {
		t.Fatalf("NewSlice: %v", err)
	}
	if s.Platform.EPCInUse() == 0 {
		t.Fatal("no EPC committed for SGX slice")
	}
	s.Stop()
	if got := s.Platform.EPCInUse(); got != 0 {
		t.Fatalf("EPC still committed after Stop: %d", got)
	}
}

func TestDeregistrationReleasesContext(t *testing.T) {
	s := newTestSlice(t, paka.Container)
	device := provisionUE(t, s, "0000000070")
	sess, err := s.GNB.RegisterUE(context.Background(), device)
	if err != nil {
		t.Fatalf("RegisterUE: %v", err)
	}
	if s.AMF.RegisteredUEs() != 1 {
		t.Fatal("not registered")
	}
	if err := sess.Deregister(context.Background()); err != nil {
		t.Fatalf("Deregister: %v", err)
	}
	if s.AMF.RegisteredUEs() != 0 {
		t.Fatal("context not released")
	}
	// The old GUTI binding is gone: a mobility registration with it is
	// not blindly accepted but recovered through the identity procedure
	// (IdentityRequest -> fresh SUCI -> full re-authentication).
	if _, err := s.GNB.ReRegisterUE(context.Background(), device); err != nil {
		t.Fatalf("identity-procedure recovery after detach: %v", err)
	}
	if s.AMF.RegisteredUEs() != 1 {
		t.Fatal("UE not re-registered")
	}
}

func TestNullSchemeRegistrationExposesMSIN(t *testing.T) {
	s := newTestSlice(t, paka.Container)
	supi := suci.SUPI{MCC: "001", MNC: "01", MSIN: "0000000090"}
	k := make([]byte, 16)
	if _, err := io.ReadFull(rand.Reader, k); err != nil {
		t.Fatalf("key gen: %v", err)
	}
	opc, err := milenage.ComputeOPc(k, make([]byte, 16))
	if err != nil {
		t.Fatalf("ComputeOPc: %v", err)
	}
	if err := s.ProvisionSubscriber(context.Background(), supi, k, opc); err != nil {
		t.Fatalf("ProvisionSubscriber: %v", err)
	}
	device, err := ue.New(ue.Config{
		SUPI: supi, K: k, OPc: opc,
		HomeNetworkPublicKey: s.HomeNetworkKey.PublicKey(),
		HomeNetworkKeyID:     s.HomeNetworkKey.ID,
		Env:                  s.Env,
		UseNullScheme:        true,
	})
	if err != nil {
		t.Fatalf("ue.New: %v", err)
	}
	// The initial NAS message leaks the MSIN — the privacy gap of the
	// null scheme.
	pdu, err := device.BuildRegistrationRequest(context.Background(), s.AMF.ServingNetworkName())
	if err != nil {
		t.Fatalf("BuildRegistrationRequest: %v", err)
	}
	if !bytes.Contains(pdu, []byte(supi.MSIN)) {
		t.Fatal("null-scheme registration does not carry plaintext MSIN")
	}
	// And the core still registers the UE (test-network behaviour).
	if _, err := s.GNB.RegisterUE(context.Background(), device); err != nil {
		t.Fatalf("null-scheme RegisterUE: %v", err)
	}
}
